//! The SMPI runtime: simcall protocol and the maestro progress engine.
//!
//! MPI ranks (simix actors) issue [`Simcall`]s; the maestro matches sends to
//! receives, drives message state machines over the [`Fabric`], and resolves
//! blocked ranks when their wait conditions hold. This is where the paper's
//! protocol semantics live:
//!
//! * **matching** — per (context id, destination), receives match the
//!   earliest compatible unmatched message in send-post order (MPI's
//!   non-overtaking rule); `ANY_SOURCE`/`ANY_TAG` wildcards supported;
//!   implemented with the per-(src, tag) FIFOs of [`crate::matching`] so
//!   the common concrete match costs O(1), not a queue scan;
//! * **eager** (≤ threshold) — the wire transfer starts at send post; the
//!   sender's request completes after its injection delay, independent of
//!   the receiver; an unexpected message waits, arrived, for its receive;
//! * **rendezvous** (> threshold) — the transfer starts only once *both*
//!   sides have posted (plus an RTS/CTS round-trip on profiles that model
//!   it); sender and receiver complete together;
//! * per-message software overheads and the receive-side copy penalty of the
//!   active [`MpiProfile`].
//!
//! Progress is **O(completions)**: a reverse index from request to waiting
//! actor means each fabric event re-examines only the waiters whose
//! requests actually completed, never the whole blocked population. At
//! 10k+ ranks this is the difference between a linear and a quadratic
//! drive loop.

use std::collections::HashMap;
use std::time::Instant;

use simix::{ActorEvent, ActorId, Simix};
use smpi_obs::{
    ContentionReport, FlowAttribution, FlowRecord, Rec, Recorder, SelfProfile, TimeSeries,
    TsInstant,
};
use smpi_platform::HostIx;

use crate::capture::{Capture, TiOp, TiTrace};
use crate::error::SimError;
use crate::fabric::{Fabric, FabricToken, MpiProfile};
use crate::flight::{wait_mode_name, FlightRecorder, PendingReq, Postmortem, RankPostmortem};
use crate::matching::{MsgFifos, RecvFifos};
use crate::state::SimClock;
use crate::trace::{TraceEvent, TraceKind};

/// Wildcard source for receives (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = crate::matching::ANY_SOURCE;
/// Wildcard tag for receives (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = crate::matching::ANY_TAG;

/// Identifier of a pending communication request (`MPI_Request`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

/// How a wait-class simcall completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitMode {
    /// Block until every request is complete (`MPI_Waitall`).
    All,
    /// Block until at least one completes; report exactly one (`MPI_Waitany`).
    Any,
    /// Block until at least one completes; report all complete (`MPI_Waitsome`).
    Some,
    /// Never block; report whatever is complete now (`MPI_Test*`).
    Poll,
}

/// Completion record delivered back to the application.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The completed request.
    pub req: ReqId,
    /// Index of the request in the waited slice.
    pub index: usize,
    /// World rank of the message source (receives; senders echo self).
    pub source: u32,
    /// Message tag.
    pub tag: i32,
    /// Message size in bytes.
    pub bytes: u64,
    /// Received payload (receives only).
    pub data: Option<Box<[u8]>>,
}

/// A request from a rank to the maestro.
#[derive(Debug)]
pub enum Simcall {
    /// Post a send.
    Isend {
        /// Destination world rank.
        dst: u32,
        /// Context id of the communicator.
        cid: u32,
        /// Message tag (>= 0).
        tag: i32,
        /// Message payload.
        payload: Box<[u8]>,
    },
    /// Post a data-less send of `bytes` (§3.2 technique #2: when CPU bursts
    /// are bypassed, their arrays are unreferenced and need not move; only
    /// the message *size* matters for timing).
    IsendSized {
        /// Destination world rank.
        dst: u32,
        /// Context id.
        cid: u32,
        /// Tag.
        tag: i32,
        /// Simulated message size in bytes.
        bytes: u64,
    },
    /// Post a receive.
    Irecv {
        /// Source world rank or [`ANY_SOURCE`].
        src: i32,
        /// Context id.
        cid: u32,
        /// Tag or [`ANY_TAG`].
        tag: i32,
        /// Capacity of the receive buffer in bytes.
        max_bytes: u64,
    },
    /// Wait for / test some requests.
    Wait {
        /// The requests, in application order.
        reqs: Vec<ReqId>,
        /// Blocking behaviour.
        mode: WaitMode,
    },
    /// Burn `flops` on the rank's host.
    Exec {
        /// Amount of computation.
        flops: f64,
    },
    /// Advance simulated time without consuming resources.
    Sleep {
        /// Seconds of simulated delay.
        secs: f64,
    },
    /// Read the simulated clock (`MPI_Wtime`).
    Now,
    /// Annotate entry/exit of a named region (collectives) on the caller's
    /// observability timeline. Zero simulated cost; only issued when
    /// metrics are enabled.
    Region {
        /// Region name (e.g. the collective's name).
        name: &'static str,
        /// `true` on entry, `false` on exit.
        enter: bool,
    },
}

/// The maestro's answer to a simcall.
#[derive(Debug)]
pub enum SimResp {
    /// Handle for a freshly posted Isend/Irecv.
    Req(ReqId),
    /// Completions for a Wait/Poll.
    Done(Vec<Completion>),
    /// The simulated time.
    Now(f64),
    /// Exec/Sleep finished.
    Unit,
}

/// The simix runtime specialized to the SMPI protocol.
pub type Sx = Simix<Simcall, SimResp>;
/// Actor-side handle specialized to the SMPI protocol.
pub type SxHandle = simix::ActorHandle<Simcall, SimResp>;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MsgId(u64);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MsgState {
    /// Created; rendezvous messages sit here until matched.
    Posted,
    /// Pre-transfer delay (send overhead / handshake) in progress.
    PreDelay,
    /// Wire transfer in progress.
    InFlight,
    /// Post-transfer delay (copy + recv overhead) in progress.
    PostDelay,
    /// Fully arrived at the receiver.
    Arrived,
}

#[derive(Debug)]
struct Message {
    tag: i32,
    src: u32,
    dst: u32,
    bytes: u64,
    payload: Option<Box<[u8]>>,
    state: MsgState,
    eager: bool,
    send_req: ReqId,
    recv_req: Option<ReqId>,
    /// Contention attribution of the wire transfer, fetched from the fabric
    /// when the wire completes and turned into a [`FlowRecord`] at arrival.
    attr: Option<FlowAttribution>,
}

#[derive(Debug)]
enum ReqKind {
    Send,
    // The receive's (src, tag) specification lives in the matching store
    // (`RecvFifos`) until matched; the request only keeps what completion
    // needs.
    Recv { max_bytes: u64, msg: Option<MsgId> },
}

/// What a completed request reports back: (source, tag, bytes, payload).
type CompletionRecord = (u32, i32, u64, Option<Box<[u8]>>);

#[derive(Debug)]
struct Request {
    kind: ReqKind,
    complete: bool,
    /// Filled when complete; taken when reported to the application.
    record: Option<CompletionRecord>,
}

#[derive(Debug)]
enum TokenUse {
    /// Message advanced to the next stage when this token completes.
    MsgPre(MsgId),
    MsgWire(MsgId),
    MsgPost(MsgId),
    /// Eager sender-side injection finished.
    SenderDone(MsgId),
    /// An Exec/Sleep simcall of this actor finished.
    ActorDelay(ActorId),
}

#[derive(Debug)]
struct Waiting {
    reqs: Vec<ReqId>,
    mode: WaitMode,
    /// Distinct incomplete requests still registered in the reverse index.
    remaining: usize,
    /// Already pushed on `ready_waiters` (guards double-queueing when a
    /// second request of an Any/Some waiter completes in the same pass).
    queued: bool,
}

/// The progress engine. Owns the fabric and all protocol state; the
/// [`crate::world::World`] runner wires it to a `Simix` instance.
pub struct Runtime {
    fabric: Box<dyn Fabric>,
    profile: MpiProfile,
    /// World rank -> host placement.
    placement: Vec<HostIx>,
    next_req: u64,
    next_msg: u64,
    requests: HashMap<ReqId, Request>,
    messages: HashMap<MsgId, Message>,
    tokens: HashMap<FabricToken, TokenUse>,
    /// Unmatched messages per (cid, dst), FIFO per concrete (src, tag);
    /// send-post order carried by the message id.
    pending_msgs: MsgFifos<MsgId>,
    /// Unmatched posted receives per (cid, dst), FIFO per (src, tag) spec;
    /// post order carried by the request id.
    posted_recvs: RecvFifos<ReqId>,
    /// Ranks blocked in a Wait.
    waiting: HashMap<ActorId, Waiting>,
    /// Reverse index: incomplete request -> the actor waiting on it. At
    /// most one waiter per request (requests belong to the actor that
    /// posted them, and an actor waits on one set at a time).
    req_waiter: HashMap<ReqId, ActorId>,
    /// Waiters whose condition now holds, queued by [`Self::notify_completion`];
    /// drained (in actor-id order) by the next resolution pass.
    ready_waiters: Vec<ActorId>,
    /// Actors whose Exec/Sleep finished, to be resolved on the next pass.
    delayed_actors: Vec<ActorId>,
    /// Simulated completion time of each rank (actor id = world rank).
    finish_times: Vec<f64>,
    /// Event trace, when enabled.
    trace: Option<Vec<TraceEvent>>,
    /// Time-independent capture, when enabled (see [`crate::capture`]).
    capture: Option<Capture>,
    /// Per-delivered-message contention attribution, in delivery order
    /// (only fed while a recorder is enabled — the fabric returns no
    /// attribution otherwise).
    flow_records: Vec<FlowRecord>,
    /// Published simulated clock, read locally by ranks (`MPI_Wtime`).
    clock: std::sync::Arc<SimClock>,
    /// Metrics recorder (disabled by default: every emit is one branch).
    rec: Rec,
    /// Whether the drive loop takes wall-clock phase timings.
    profiling: bool,
    /// Simcalls handled (plain increment, always collected).
    n_simcalls: u64,
    /// Fabric completion tokens dispatched.
    n_tokens: u64,
    /// Wall-clock seconds per drive-loop phase (only filled when profiling).
    phase_actors: f64,
    phase_maestro: f64,
    phase_fabric: f64,
    phase_resolve: f64,
    /// Always-on per-rank ring of recent ops (see [`crate::flight`]); the
    /// source of the [`Postmortem`] attached to progress failures.
    flight: FlightRecorder,
    /// Time-resolved telemetry, when enabled (see [`smpi_obs::TimeSeries`]).
    timeseries: Option<TimeSeries>,
    /// Reused per-link utilization buffer for the telemetry tick.
    ts_util_buf: Vec<f64>,
    /// Memory high-water-mark probe for the telemetry tick (the World
    /// runner points it at the shared memory tracker).
    mem_probe: Option<Box<dyn Fn() -> u64 + Send>>,
    /// Live progress emitter, when enabled.
    progress: Option<Progress>,
}

/// ETA extrapolation for the progress emitter: wall seconds until `sim`
/// reaches `total_hint` at the observed `sim_rate` (simulated seconds per
/// wall second). Returns `None` — rendered as an explicit `"eta_s":null` —
/// whenever the extrapolation is meaningless: no hint, a zero/negative
/// hint, a rate that is zero, negative or NaN (a tier that finished inside
/// the first progress interval advances no sim time), or a denormal rate
/// whose quotient overflows to infinity.
fn eta_seconds(total_hint: Option<f64>, sim: f64, sim_rate: f64) -> Option<f64> {
    total_hint
        .filter(|&total| total > 0.0 && sim_rate > 0.0)
        .map(|total| (total - sim).max(0.0) / sim_rate)
        .filter(|eta| eta.is_finite())
}

/// Wall-clock-periodic progress emitter state.
struct Progress {
    /// Minimum wall-clock seconds between emitted lines.
    period: f64,
    /// Expected total simulated seconds (for the ETA extrapolation),
    /// typically a previously recorded makespan of the same workload.
    total_hint: Option<f64>,
    started: Instant,
    last: Instant,
    last_sim: f64,
    last_simcalls: u64,
}

impl Runtime {
    /// Creates a runtime over a fabric for `nranks` ranks placed on hosts
    /// round-robin (`placement[r]` is rank r's host).
    pub fn new(fabric: Box<dyn Fabric>, profile: MpiProfile, placement: Vec<HostIx>) -> Self {
        let n = placement.len();
        Runtime {
            fabric,
            profile,
            placement,
            next_req: 0,
            next_msg: 0,
            requests: HashMap::new(),
            messages: HashMap::new(),
            tokens: HashMap::new(),
            pending_msgs: MsgFifos::new(),
            posted_recvs: RecvFifos::new(),
            waiting: HashMap::new(),
            req_waiter: HashMap::new(),
            ready_waiters: Vec::new(),
            delayed_actors: Vec::new(),
            finish_times: vec![0.0; n],
            trace: None,
            capture: None,
            flow_records: Vec::new(),
            clock: std::sync::Arc::new(SimClock::new()),
            rec: Rec::disabled(),
            profiling: false,
            n_simcalls: 0,
            n_tokens: 0,
            phase_actors: 0.0,
            phase_maestro: 0.0,
            phase_fabric: 0.0,
            phase_resolve: 0.0,
            flight: FlightRecorder::new(n),
            timeseries: None,
            ts_util_buf: Vec::new(),
            mem_probe: None,
            progress: None,
        }
    }

    /// Enables the bounded-memory time-series sampler with the given bucket
    /// budget (see [`smpi_obs::TimeSeries`]).
    pub fn enable_timeseries(&mut self, budget: usize) {
        self.timeseries = Some(TimeSeries::new(budget));
    }

    /// Takes the recorded time series, if the sampler was enabled.
    pub fn take_timeseries(&mut self) -> Option<TimeSeries> {
        self.timeseries.take()
    }

    /// Installs the memory high-water-mark probe sampled by the telemetry
    /// tick (typically the shared memory tracker's peak).
    pub fn set_memory_probe(&mut self, probe: Box<dyn Fn() -> u64 + Send>) {
        self.mem_probe = Some(probe);
    }

    /// Enables wall-clock-periodic progress lines on stderr: one JSON
    /// object per line with simulated time, simcall throughput, the
    /// sim-time advance rate, and — when `total_hint` carries the
    /// workload's expected makespan — an ETA.
    pub fn enable_progress(&mut self, period_secs: f64, total_hint: Option<f64>) {
        let now = Instant::now();
        self.progress = Some(Progress {
            period: period_secs.max(0.01),
            total_hint,
            started: now,
            last: now,
            last_sim: self.now(),
            last_simcalls: self.n_simcalls,
        });
    }

    /// Installs a metrics recorder on the maestro and (a clone of it) on the
    /// fabric. Protocol counters, per-rank state timelines and the fabric's
    /// own metrics all land in the same [`smpi_obs::MemoryRecorder`].
    pub fn set_recorder(&mut self, rec: Rec) {
        self.fabric.set_recorder(rec.clone());
        self.rec = rec;
    }

    /// Enables wall-clock phase timing in [`drive`](Self::drive).
    pub fn enable_profiling(&mut self) {
        self.profiling = true;
    }

    /// Installs the clock the maestro publishes simulated time to. Ranks
    /// holding a clone answer `MPI_Wtime` locally, with no baton pass (the
    /// local simcall tier; see [`crate::state::SimClock`]).
    pub fn set_clock(&mut self, clock: std::sync::Arc<SimClock>) {
        clock.publish(self.now());
        self.clock = clock;
    }

    /// Snapshots the accumulated metrics, or `None` when no recorder is set.
    pub fn take_metrics(&self) -> Option<smpi_obs::MetricsReport> {
        self.rec.snapshot()
    }

    /// Takes the run's contention attribution: every delivered message with
    /// its per-link share integrals and bottleneck residency, plus the
    /// fabric's link-name table. `None` unless a recorder was enabled (the
    /// fabric records no attribution without one).
    pub fn take_contention(&mut self) -> Option<ContentionReport> {
        if !self.rec.is_enabled() {
            return None;
        }
        Some(ContentionReport {
            link_names: self.fabric.link_names(),
            flows: std::mem::take(&mut self.flow_records),
        })
    }

    /// The simulator's self-profile (valid after [`drive`](Self::drive)).
    /// `wall_seconds` is left for the caller, which owns the outer clock.
    pub fn self_profile(&self) -> SelfProfile {
        SelfProfile {
            phases: if self.profiling {
                vec![
                    ("actor_execution", self.phase_actors),
                    ("simcall_handling", self.phase_maestro),
                    ("fabric_advance", self.phase_fabric),
                    ("waiter_resolution", self.phase_resolve),
                ]
            } else {
                Vec::new()
            },
            simcalls: self.n_simcalls,
            local_simcalls: 0, // filled by the World runner from shared state
            tokens: self.n_tokens,
            trace_events: self.trace.as_ref().map_or(0, |t| t.len() as u64),
            sim_time: self.now(),
            wall_seconds: 0.0,
            kernel: self.fabric.kernel_profile(),
            codec: None, // filled by the World runner after the stream is finished
        }
    }

    /// Enables event tracing (see [`crate::trace`]).
    pub fn enable_tracing(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the recorded trace (empty if tracing was off).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    /// Enables time-independent trace capture (see [`crate::capture`]).
    pub fn enable_capture(&mut self) {
        self.capture = Some(Capture::new(self.finish_times.len()));
    }

    /// Enables *streaming* capture: ops are encoded to `out` in the
    /// `TITRACE2` format as the run progresses, holding at most
    /// `budget_bytes` of staged ops (see [`crate::capture_v2`]). The sink
    /// is finalized by [`take_capture_stats`](Self::take_capture_stats).
    pub fn enable_capture_stream(
        &mut self,
        out: Box<dyn std::io::Write + Send>,
        block_ops: usize,
        budget_bytes: usize,
    ) {
        self.capture = Some(Capture::new_streaming(
            self.finish_times.len(),
            out,
            block_ops,
            budget_bytes,
        ));
    }

    /// Takes the captured time-independent trace, if in-memory capture was
    /// enabled (`None` for streaming capture — the ops are on disk).
    pub fn take_capture(&mut self) -> Option<TiTrace> {
        match &self.capture {
            Some(cap) if !cap.is_streaming() => self.capture.take().map(Capture::into_trace),
            _ => None,
        }
    }

    /// Finalizes a streaming capture (flush + footer), returning the codec
    /// counters. `None` unless [`enable_capture_stream`](Self::enable_capture_stream)
    /// was used.
    pub fn take_capture_stats(&mut self) -> Option<std::io::Result<smpi_obs::CodecStats>> {
        match &self.capture {
            Some(cap) if cap.is_streaming() => {
                Some(self.capture.take().expect("just matched").finish_stream())
            }
            _ => None,
        }
    }

    fn record(&mut self, kind: TraceKind) {
        if let Some(trace) = &mut self.trace {
            let time = self.fabric.now().as_secs();
            trace.push(TraceEvent { time, kind });
        }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.fabric.now().as_secs()
    }

    /// Per-rank completion times (valid after [`drive`](Self::drive)).
    pub fn finish_times(&self) -> &[f64] {
        &self.finish_times
    }

    /// Runs the simulation to completion: alternates between running ready
    /// ranks and advancing the fabric until every rank has finished.
    ///
    /// Fails with [`SimError::Stall`] when the fabric has in-flight work
    /// that can never complete, and [`SimError::Deadlock`] when ranks are
    /// blocked with nothing in flight.
    pub fn drive(&mut self, sx: &mut Sx) -> Result<(), SimError> {
        let mut alive = sx.num_actors();
        if self.rec.is_enabled() {
            let t = self.now();
            let n = self.finish_times.len();
            self.rec.with(|r| {
                for rank in 0..n {
                    r.state_set("rank", rank as u32, t, "running");
                }
            });
        }
        // Reused across iterations: run_ready_into clears and refills it,
        // so the steady-state hot loop allocates nothing.
        let mut events: Vec<ActorEvent<Simcall>> = Vec::new();
        loop {
            if self.progress.is_some() {
                self.progress_tick();
            }
            let t0 = self.profiling.then(Instant::now);
            sx.run_ready_into(&mut events);
            if let Some(t0) = t0 {
                self.phase_actors += t0.elapsed().as_secs_f64();
            }
            let t1 = self.profiling.then(Instant::now);
            for ev in events.drain(..) {
                match ev {
                    ActorEvent::Finished(id) => {
                        let now = self.now();
                        self.finish_times[id.0 as usize] = now;
                        self.record(TraceKind::RankFinished { rank: id.0 });
                        self.rec.state_set("rank", id.0, now, "finished");
                        alive -= 1;
                    }
                    ActorEvent::Request(id, call) => {
                        self.handle_simcall(sx, id, call)?;
                    }
                }
            }
            if let Some(t1) = t1 {
                self.phase_maestro += t1.elapsed().as_secs_f64();
            }
            if alive == 0 {
                break;
            }
            // A simcall in this batch may have completed requests of a
            // waiter from an earlier batch.
            self.resolve_waiters(sx);
            if sx.has_runnable() {
                continue;
            }
            // No runnable rank: advance simulated time until one wakes.
            let t2 = self.profiling.then(Instant::now);
            let advanced = self.fabric.advance();
            if let Some(t2) = t2 {
                self.phase_fabric += t2.elapsed().as_secs_f64();
            }
            match advanced {
                Ok(Some((t, tokens))) => {
                    self.clock.publish(t.as_secs());
                    for tok in tokens {
                        self.on_token(tok)?;
                    }
                    let woken = self.resolve_waiters(sx);
                    if self.timeseries.is_some() {
                        self.timeseries_tick(woken);
                    }
                }
                Ok(None) => {
                    let postmortem = Box::new(self.build_postmortem());
                    let mut blocked: Vec<u32> = self.waiting.keys().map(|a| a.0).collect();
                    blocked.sort_unstable();
                    return Err(SimError::Deadlock {
                        blocked,
                        postmortem,
                    });
                }
                Err(SimError::Stall { error, .. }) => {
                    // The kernel attached an empty postmortem (it knows
                    // nothing about ranks); swap in the real one.
                    return Err(SimError::Stall {
                        error,
                        postmortem: Box::new(self.build_postmortem()),
                    });
                }
                Err(e) => return Err(e),
            }
        }
        if self.timeseries.is_some() {
            // Close the step integration at the final simulated time.
            self.timeseries_tick(0);
        }
        Ok(())
    }

    /// One telemetry reading, folded into the time series (called after
    /// every fabric event while the sampler is enabled, and once at the end
    /// of the run).
    fn timeseries_tick(&mut self, woken: usize) {
        let mut buf = std::mem::take(&mut self.ts_util_buf);
        self.fabric.link_utilizations(&mut buf);
        let inst = TsInstant {
            t: self.now(),
            active: self.fabric.active_actions() as u64,
            woken: woken as u64,
            simcalls: self.n_simcalls,
            tokens: self.n_tokens,
            solver_ns: self.fabric.solver_wall_ns(),
            mem_hwm: self.mem_probe.as_ref().map_or(0, |probe| probe()),
        };
        if let Some(ts) = &mut self.timeseries {
            ts.record(inst, &buf);
        }
        self.ts_util_buf = buf;
    }

    /// Emits a progress line when the period elapsed (called once per
    /// drive-loop iteration while enabled; one `Instant::now` otherwise
    /// nothing).
    fn progress_tick(&mut self) {
        let sim = self.fabric.now().as_secs();
        let n_simcalls = self.n_simcalls;
        let Some(p) = &mut self.progress else { return };
        let now = Instant::now();
        let since = now.duration_since(p.last).as_secs_f64();
        if since < p.period {
            return;
        }
        let sim_rate = (sim - p.last_sim) / since;
        let simcall_rate = (n_simcalls - p.last_simcalls) as f64 / since;
        let eta = eta_seconds(p.total_hint, sim, sim_rate);
        let wall = now.duration_since(p.started).as_secs_f64();
        p.last = now;
        p.last_sim = sim;
        p.last_simcalls = n_simcalls;
        let mut j = smpi_obs::json::JsonBuf::new();
        j.begin_obj();
        j.key("type").str_val("smpi-progress");
        j.key("wall_s").num_val(wall);
        j.key("sim_time").num_val(sim);
        j.key("simcalls").uint_val(n_simcalls);
        j.key("simcalls_per_s").num_val(simcall_rate);
        j.key("sim_per_wall").num_val(sim_rate);
        j.key("eta_s");
        match eta {
            Some(e) => j.num_val(e),
            None => j.raw_val("null"),
        };
        j.end_obj();
        eprintln!("{}", j.finish());
    }

    /// Snapshots the flight recorder and the matching stores for every
    /// blocked rank (see [`crate::flight`]).
    pub(crate) fn build_postmortem(&self) -> Postmortem {
        let mut blocked: Vec<ActorId> = self.waiting.keys().copied().collect();
        blocked.sort_unstable();
        let ranks = blocked
            .iter()
            .map(|&actor| {
                let w = &self.waiting[&actor];
                let pending = w
                    .reqs
                    .iter()
                    .filter(|r| self.requests.get(r).is_some_and(|q| !q.complete))
                    .map(|&r| self.describe_pending(r))
                    .collect();
                RankPostmortem {
                    rank: actor.0,
                    wait_mode: Some(wait_mode_name(w.mode)),
                    pending,
                    last_ops: self.flight.last_ops(actor.0),
                }
            })
            .collect();
        Postmortem { ranks }
    }

    /// Describes one incomplete request: its spec, and — for unmatched
    /// sends/receives — the nearest matching counterpart on the peer side.
    fn describe_pending(&self, r: ReqId) -> PendingReq {
        let post = self.flight.post_of(r);
        let req = &self.requests[&r];
        match &req.kind {
            ReqKind::Send => {
                let Some((mid, m)) = self.messages.iter().find(|(_, m)| m.send_req == r) else {
                    return PendingReq {
                        post,
                        spec: "send (message already collected)".into(),
                        counterpart: None,
                    };
                };
                let proto = if m.eager { "eager" } else { "rendezvous" };
                if let Some((cid, dst, src, tag)) = self.pending_msgs.find(*mid) {
                    PendingReq {
                        post,
                        spec: format!(
                            "send dst {dst} cid {cid} tag {tag} ({} B, {proto}, unmatched)",
                            m.bytes
                        ),
                        counterpart: self.nearest_recv(cid, dst, src, tag),
                    }
                } else {
                    let state = match m.state {
                        MsgState::Posted => "matched, not started",
                        MsgState::PreDelay => "in pre-transfer delay",
                        MsgState::InFlight => "on the wire",
                        MsgState::PostDelay => "in post-transfer delay",
                        MsgState::Arrived => "arrived",
                    };
                    PendingReq {
                        post,
                        spec: format!(
                            "send dst {} tag {} ({} B, {proto}, {state})",
                            m.dst, m.tag, m.bytes
                        ),
                        counterpart: None,
                    }
                }
            }
            ReqKind::Recv { max_bytes, msg } => match msg {
                Some(mid) => {
                    let m = &self.messages[mid];
                    let state = match m.state {
                        MsgState::Posted => "matched, not started",
                        MsgState::PreDelay => "in pre-transfer delay",
                        MsgState::InFlight => "on the wire",
                        MsgState::PostDelay => "in post-transfer delay",
                        MsgState::Arrived => "arrived",
                    };
                    PendingReq {
                        post,
                        spec: format!("recv src {} tag {} ({} B, {state})", m.src, m.tag, m.bytes),
                        counterpart: None,
                    }
                }
                None => {
                    let Some((cid, dst, src, tag)) = self.posted_recvs.find(r) else {
                        return PendingReq {
                            post,
                            spec: format!("recv (max {max_bytes} B, spec already consumed)"),
                            counterpart: None,
                        };
                    };
                    PendingReq {
                        post,
                        spec: format!(
                            "recv src {src} cid {cid} tag {tag} (max {max_bytes} B, unmatched)"
                        ),
                        counterpart: self.nearest_send(cid, dst, src, tag),
                    }
                }
            },
        }
    }

    /// Why rank `dst` is not receiving an unmatched send from `src` with
    /// `tag`: the closest posted receive and which field mismatches
    /// (`None` when the peer has nothing posted at all).
    fn nearest_recv(&self, cid: u32, dst: u32, src: u32, tag: i32) -> Option<String> {
        let specs = self.posted_recvs.specs(cid, dst);
        if specs.is_empty() {
            return None;
        }
        // Every posted spec mismatches (it would have matched otherwise):
        // prefer the same-source one (a tag bug), then the same-tag one (a
        // source bug), then the earliest posted.
        if let Some((_, rtag, _, _)) = specs
            .iter()
            .find(|&&(rsrc, _, _, _)| rsrc == ANY_SOURCE || rsrc == src as i32)
        {
            return Some(format!(
                "rank {dst} is waiting on a receive with tag {rtag} \
                 (the send carries tag {tag}) — tag mismatch"
            ));
        }
        if let Some((rsrc, _, _, _)) = specs
            .iter()
            .find(|&&(_, rtag, _, _)| rtag == ANY_TAG || rtag == tag)
        {
            return Some(format!(
                "rank {dst} is waiting on a receive from source {rsrc} \
                 (the send comes from rank {src}) — source mismatch"
            ));
        }
        let (rsrc, rtag, _, _) = specs[0];
        Some(format!(
            "rank {dst}'s earliest posted receive wants src {rsrc} tag {rtag}"
        ))
    }

    /// Why a receive posted on rank `dst` with spec `(src, tag)` is
    /// starving: the closest unmatched send and which field mismatches
    /// (`None` when no unmatched send targets the rank at all).
    fn nearest_send(&self, cid: u32, dst: u32, src: i32, tag: i32) -> Option<String> {
        let envs = self.pending_msgs.envelopes(cid, dst);
        if envs.is_empty() {
            return None;
        }
        if let Some((esrc, etag, _, _)) = envs
            .iter()
            .find(|&&(esrc, _, _, _)| src == ANY_SOURCE || src == esrc as i32)
        {
            return Some(format!(
                "rank {esrc} has an unmatched send with tag {etag} \
                 (the receive wants tag {tag}) — tag mismatch"
            ));
        }
        if let Some((esrc, etag, _, _)) = envs
            .iter()
            .find(|&&(_, etag, _, _)| tag == ANY_TAG || tag == etag)
        {
            return Some(format!(
                "rank {esrc} has an unmatched send with tag {etag} \
                 (the receive wants source {src}) — source mismatch"
            ));
        }
        let (esrc, etag, _, _) = envs[0];
        Some(format!(
            "earliest unmatched send is from rank {esrc} with tag {etag}"
        ))
    }

    fn handle_simcall(
        &mut self,
        sx: &mut Sx,
        actor: ActorId,
        call: Simcall,
    ) -> Result<(), SimError> {
        self.n_simcalls += 1;
        match call {
            Simcall::Isend {
                dst,
                cid,
                tag,
                payload,
            } => {
                assert!(tag >= 0, "send tags must be non-negative");
                let bytes = payload.len() as u64;
                let op = TiOp::Send {
                    dst,
                    cid,
                    tag,
                    bytes,
                };
                // The flight entry must precede the post: an eager send can
                // complete (and log its `done` line) inside `post_send`.
                self.flight
                    .on_post(actor.0, ReqId(self.next_req), op.clone());
                let req = self.post_send(actor.0, dst, cid, tag, Some(payload), bytes)?;
                if let Some(cap) = &mut self.capture {
                    cap.on_post(actor.0, req, op);
                }
                sx.resolve(actor, SimResp::Req(req));
            }
            Simcall::IsendSized {
                dst,
                cid,
                tag,
                bytes,
            } => {
                assert!(tag >= 0, "send tags must be non-negative");
                let op = TiOp::Send {
                    dst,
                    cid,
                    tag,
                    bytes,
                };
                self.flight
                    .on_post(actor.0, ReqId(self.next_req), op.clone());
                let req = self.post_send(actor.0, dst, cid, tag, None, bytes)?;
                if let Some(cap) = &mut self.capture {
                    cap.on_post(actor.0, req, op);
                }
                sx.resolve(actor, SimResp::Req(req));
            }
            Simcall::Irecv {
                src,
                cid,
                tag,
                max_bytes,
            } => {
                let op = TiOp::Recv {
                    src,
                    cid,
                    tag,
                    max_bytes,
                };
                self.flight
                    .on_post(actor.0, ReqId(self.next_req), op.clone());
                let req = self.post_recv(actor.0, src, cid, tag, max_bytes)?;
                if let Some(cap) = &mut self.capture {
                    cap.on_post(actor.0, req, op);
                }
                sx.resolve(actor, SimResp::Req(req));
            }
            Simcall::Wait { reqs, mode } => {
                if let Some(cap) = &mut self.capture {
                    cap.on_wait(actor.0, &reqs, mode);
                }
                self.flight.on_wait(actor.0, &reqs, mode);
                if mode != WaitMode::Poll && self.rec.is_enabled() {
                    // Blocked state: receives dominate the wait semantics,
                    // so any incomplete receive in the set labels it.
                    let blocked_on_recv = reqs.iter().any(|r| {
                        matches!(
                            self.requests.get(r).map(|q| &q.kind),
                            Some(ReqKind::Recv { .. })
                        )
                    });
                    let state = if blocked_on_recv {
                        "blocked_in_recv"
                    } else {
                        "blocked_in_send"
                    };
                    self.rec.state_push("rank", actor.0, self.now(), state);
                }
                // Register incomplete requests in the reverse index; an
                // already-satisfied waiter queues for the next resolution
                // pass (Poll always does).
                let mut remaining = 0;
                let mut any_complete = false;
                // Poll resolves unconditionally on the next pass and must
                // not register: its entries would outlive the resolution.
                if mode != WaitMode::Poll {
                    for &r in &reqs {
                        if self.requests[&r].complete {
                            any_complete = true;
                        } else {
                            // `entry` dedupes: a request listed twice
                            // registers (and counts) once.
                            if let std::collections::hash_map::Entry::Vacant(e) =
                                self.req_waiter.entry(r)
                            {
                                e.insert(actor);
                                remaining += 1;
                            }
                        }
                    }
                }
                let satisfied = match mode {
                    WaitMode::All => remaining == 0,
                    WaitMode::Any | WaitMode::Some => any_complete,
                    WaitMode::Poll => true,
                };
                self.waiting.insert(
                    actor,
                    Waiting {
                        reqs,
                        mode,
                        remaining,
                        queued: satisfied,
                    },
                );
                if satisfied {
                    self.ready_waiters.push(actor);
                }
            }
            Simcall::Exec { flops } => {
                if let Some(cap) = &mut self.capture {
                    cap.on_op(actor.0, TiOp::Compute { flops });
                }
                self.flight.on_op(actor.0, TiOp::Compute { flops });
                self.record(TraceKind::ExecStarted {
                    rank: actor.0,
                    flops,
                });
                self.rec
                    .state_push("rank", actor.0, self.now(), "computing");
                let host = self.placement[actor.0 as usize];
                let tok = self.fabric.start_exec(host, flops);
                self.tokens.insert(tok, TokenUse::ActorDelay(actor));
            }
            Simcall::Sleep { secs } => {
                if let Some(cap) = &mut self.capture {
                    cap.on_op(actor.0, TiOp::Sleep { secs });
                }
                self.flight.on_op(actor.0, TiOp::Sleep { secs });
                self.rec.state_push("rank", actor.0, self.now(), "sleeping");
                let tok = self.fabric.start_sleep(secs);
                self.tokens.insert(tok, TokenUse::ActorDelay(actor));
            }
            Simcall::Now => {
                sx.resolve(actor, SimResp::Now(self.now()));
            }
            Simcall::Region { name, enter } => {
                let op = TiOp::Region {
                    name: name.to_string(),
                    enter,
                };
                if let Some(cap) = &mut self.capture {
                    cap.on_op(actor.0, op.clone());
                }
                self.flight.on_op(actor.0, op);
                if self.rec.is_enabled() {
                    let t = self.now();
                    self.rec.with(|r| {
                        if enter {
                            r.counter_add(&format!("core.coll.{name}"), 1);
                            r.state_push("rank", actor.0, t, name);
                        } else {
                            r.state_pop("rank", actor.0, t);
                        }
                    });
                }
                sx.resolve(actor, SimResp::Unit);
            }
        }
        Ok(())
    }

    fn alloc_req(&mut self, kind: ReqKind) -> ReqId {
        let id = ReqId(self.next_req);
        self.next_req += 1;
        self.requests.insert(
            id,
            Request {
                kind,
                complete: false,
                record: None,
            },
        );
        id
    }

    fn post_send(
        &mut self,
        src: u32,
        dst: u32,
        cid: u32,
        tag: i32,
        payload: Option<Box<[u8]>>,
        bytes: u64,
    ) -> Result<ReqId, SimError> {
        let send_req = self.alloc_req(ReqKind::Send);
        let eager = self.profile.is_eager(bytes);
        self.record(TraceKind::SendPosted {
            src,
            dst,
            tag,
            bytes,
            eager,
        });
        self.rec.with(|r| {
            r.counter_add(
                if eager {
                    "core.sends.eager"
                } else {
                    "core.sends.rendezvous"
                },
                1,
            );
            r.fcounter_add("core.bytes.posted", bytes as f64);
        });
        let mid = MsgId(self.next_msg);
        self.next_msg += 1;
        self.messages.insert(
            mid,
            Message {
                tag,
                src,
                dst,
                bytes,
                payload,
                state: MsgState::Posted,
                eager,
                send_req,
                recv_req: None,
                attr: None,
            },
        );

        // Try to match the earliest compatible already-posted receive.
        if let Some(req) = self.posted_recvs.pop_match(cid, dst, src, tag) {
            self.bind(mid, req)?;
        } else {
            self.pending_msgs.push(cid, dst, src, tag, mid.0, mid);
        }

        if eager {
            // Eager: the wire starts regardless of matching.
            self.begin_wire(mid)?;
            // Sender-side completion: injection delay, or immediate.
            let pre = self.profile.send_overhead;
            let inj = if self.profile.injection_rate.is_finite() {
                bytes as f64 / self.profile.injection_rate
            } else {
                0.0
            };
            if pre + inj > 0.0 {
                let tok = self.fabric.start_sleep(pre + inj);
                self.tokens.insert(tok, TokenUse::SenderDone(mid));
            } else {
                self.complete_send(mid)?;
            }
        } else if self.messages[&mid].recv_req.is_some() {
            // Rendezvous already matched: begin the handshake.
            self.begin_rendezvous(mid)?;
        }
        Ok(send_req)
    }

    fn post_recv(
        &mut self,
        dst: u32,
        src: i32,
        cid: u32,
        tag: i32,
        max_bytes: u64,
    ) -> Result<ReqId, SimError> {
        self.record(TraceKind::RecvPosted { dst, src, tag });
        let req = self.alloc_req(ReqKind::Recv {
            max_bytes,
            msg: None,
        });
        // Match the earliest compatible pending message (send-post order;
        // everything in the pending store is unbound by construction).
        if let Some(mid) = self.pending_msgs.pop_match(cid, dst, src, tag) {
            self.bind(mid, req)?;
            let m = &self.messages[&mid];
            if m.eager {
                if m.state == MsgState::Arrived {
                    self.complete_recv(mid)?;
                }
                // else: completes when the arrival chain finishes.
            } else {
                self.begin_rendezvous(mid)?;
            }
        } else {
            self.posted_recvs.push(cid, dst, src, tag, req.0, req);
        }
        Ok(req)
    }

    /// Builds a [`SimError::Protocol`] with the current flight-recorder
    /// snapshot attached, so a malformed or truncated trace reports which
    /// id was missing *and* what every blocked rank was doing.
    fn protocol(&self, detail: String) -> SimError {
        SimError::Protocol {
            detail,
            postmortem: Box::new(self.build_postmortem()),
        }
    }

    /// Completion-path message lookup: a missing id means the event stream
    /// violated the protocol state machine (e.g. a truncated `.tit` trace),
    /// which is a diagnosable [`SimError::Protocol`], not a panic.
    fn msg_mut(&mut self, mid: MsgId, ctx: &str) -> Result<&mut Message, SimError> {
        if !self.messages.contains_key(&mid) {
            return Err(self.protocol(format!("{ctx} message {} that is not live", mid.0)));
        }
        Ok(self.messages.get_mut(&mid).expect("presence just checked"))
    }

    /// Completion-path request lookup; same contract as [`Self::msg_mut`].
    fn req_mut(&mut self, req: ReqId, ctx: &str) -> Result<&mut Request, SimError> {
        if !self.requests.contains_key(&req) {
            return Err(self.protocol(format!("{ctx} request {} that is not live", req.0)));
        }
        Ok(self.requests.get_mut(&req).expect("presence just checked"))
    }

    /// Binds a message to a receive request (both directions).
    fn bind(&mut self, mid: MsgId, req: ReqId) -> Result<(), SimError> {
        let m = self.msg_mut(mid, "binding a receive to a")?;
        debug_assert!(m.recv_req.is_none());
        m.recv_req = Some(req);
        let bytes = m.bytes;
        let mut bound = None;
        if let ReqKind::Recv { msg, max_bytes } = &mut self.req_mut(req, "binding a")?.kind {
            debug_assert!(msg.is_none());
            *msg = Some(mid);
            bound = Some(*max_bytes);
        }
        let Some(max) = bound else {
            return Err(self.protocol(format!("message {} matched a send request", mid.0)));
        };
        assert!(
            bytes <= max,
            "MPI_ERR_TRUNCATE: message of {bytes} bytes into a {max}-byte buffer"
        );
        Ok(())
    }

    /// Starts the wire transfer (or local copy) for a message.
    fn begin_wire(&mut self, mid: MsgId) -> Result<(), SimError> {
        let pre = self.profile.send_overhead;
        let self_rate = self.profile.self_rate;
        let recv_overhead = self.profile.recv_overhead;
        let m = self.msg_mut(mid, "starting the wire for a")?;
        if m.src == m.dst {
            // Self-message: a memcpy-rate delay covers the whole path.
            let d = pre + m.bytes as f64 / self_rate + recv_overhead;
            m.state = MsgState::PostDelay;
            let tok = self.fabric.start_sleep(d);
            self.tokens.insert(tok, TokenUse::MsgPost(mid));
            return Ok(());
        }
        if pre > 0.0 {
            m.state = MsgState::PreDelay;
            let tok = self.fabric.start_sleep(pre);
            self.tokens.insert(tok, TokenUse::MsgPre(mid));
            Ok(())
        } else {
            self.start_transfer_now(mid)
        }
    }

    /// Starts the rendezvous chain once both sides are posted.
    fn begin_rendezvous(&mut self, mid: MsgId) -> Result<(), SimError> {
        let (src, dst) = {
            let m = self.msg_mut(mid, "starting a rendezvous for a")?;
            debug_assert!(!m.eager && m.recv_req.is_some());
            debug_assert_eq!(m.state, MsgState::Posted);
            (m.src, m.dst)
        };
        if src == dst {
            return self.begin_wire(mid);
        }
        let mut delay = self.profile.send_overhead;
        if self.profile.rendezvous_handshake {
            // RTS + CTS round trip before data flows.
            delay += 2.0
                * self
                    .fabric
                    .control_latency(self.placement[src as usize], self.placement[dst as usize]);
        }
        if delay > 0.0 {
            self.msg_mut(mid, "starting a rendezvous for a")?.state = MsgState::PreDelay;
            let tok = self.fabric.start_sleep(delay);
            self.tokens.insert(tok, TokenUse::MsgPre(mid));
            Ok(())
        } else {
            self.start_transfer_now(mid)
        }
    }

    fn start_transfer_now(&mut self, mid: MsgId) -> Result<(), SimError> {
        let (msrc, mdst, mbytes) = {
            let m = self.msg_mut(mid, "starting the transfer of a")?;
            m.state = MsgState::InFlight;
            (m.src, m.dst, m.bytes)
        };
        let src = self.placement[msrc as usize];
        let dst = self.placement[mdst as usize];
        // Implementation pipelining efficiency: the wire carries
        // bytes / efficiency effective volume (MpiProfile docs).
        let bytes = (mbytes as f64 / self.profile.wire_efficiency).ceil() as u64;
        let tok = self.fabric.start_transfer(src, dst, bytes);
        self.tokens.insert(tok, TokenUse::MsgWire(mid));
        self.record(TraceKind::TransferStarted {
            src: msrc,
            dst: mdst,
            bytes,
        });
        Ok(())
    }

    fn on_token(&mut self, tok: FabricToken) -> Result<(), SimError> {
        let Some(usage) = self.tokens.remove(&tok) else {
            return Err(self.protocol(format!("fabric completion for unknown token {}", tok.0)));
        };
        self.n_tokens += 1;
        match usage {
            TokenUse::MsgPre(mid) => self.start_transfer_now(mid),
            TokenUse::MsgWire(mid) => {
                if let Some(attr) = self.fabric.take_flow_attribution(tok) {
                    self.msg_mut(mid, "attributing a delivered")?.attr = Some(attr);
                }
                let (eager, bytes) = {
                    let m = self.msg_mut(mid, "delivering a")?;
                    (m.eager, m.bytes)
                };
                let mut post = self.profile.recv_overhead;
                if eager {
                    if let Some(rate) = self.profile.copy_rate {
                        post += bytes as f64 / rate;
                    }
                }
                if post > 0.0 {
                    self.msg_mut(mid, "delivering a")?.state = MsgState::PostDelay;
                    let t = self.fabric.start_sleep(post);
                    self.tokens.insert(t, TokenUse::MsgPost(mid));
                    Ok(())
                } else {
                    self.arrive(mid)
                }
            }
            TokenUse::MsgPost(mid) => self.arrive(mid),
            TokenUse::SenderDone(mid) => self.complete_send(mid),
            TokenUse::ActorDelay(actor) => {
                // Resolution is deferred to the waiter pass; Exec/Sleep use a
                // dedicated path because there is no ReqId involved.
                self.delayed_actors.push(actor);
                Ok(())
            }
        }
    }

    fn arrive(&mut self, mid: MsgId) -> Result<(), SimError> {
        let (matched, eager, src, dst, tag, bytes, attr) = {
            let m = self.msg_mut(mid, "recording the arrival of a")?;
            m.state = MsgState::Arrived;
            (
                m.recv_req.is_some(),
                m.eager,
                m.src,
                m.dst,
                m.tag,
                m.bytes,
                m.attr.take(),
            )
        };
        if let Some(attr) = attr {
            // Delivery order: deterministic, and FIFO-pairable with the
            // trace's Delivered events per (src, dst).
            self.flow_records.push(FlowRecord {
                src,
                dst,
                bytes,
                attr,
            });
        }
        self.record(TraceKind::Delivered {
            src,
            dst,
            tag,
            bytes,
        });
        if !matched {
            // Eager message that beat its receive: it sits in an unexpected-
            // message buffer until a matching receive is posted.
            self.rec.counter_add("core.msgs.unexpected", 1);
        }
        if matched {
            self.complete_recv(mid)?;
            if !eager {
                // Rendezvous: synchronous sender completes with arrival.
                self.complete_send(mid)?;
            }
        }
        // Unmatched eager message: stays Arrived in pending_msgs until a
        // receive claims it.
        Ok(())
    }

    /// Marks a request complete and, if an actor is blocked on it, updates
    /// that waiter's count — queueing the actor once its condition holds.
    /// This is the O(completions) hook: nothing else ever re-examines
    /// waiters.
    fn notify_completion(&mut self, req: ReqId) {
        if let Some(actor) = self.req_waiter.remove(&req) {
            let w = self.waiting.get_mut(&actor).expect("indexed waiter exists");
            w.remaining -= 1;
            let satisfied = match w.mode {
                WaitMode::All => w.remaining == 0,
                // Any completion satisfies; Poll never registers.
                WaitMode::Any | WaitMode::Some => true,
                WaitMode::Poll => unreachable!("poll waiters queue immediately"),
            };
            if satisfied && !w.queued {
                w.queued = true;
                self.ready_waiters.push(actor);
            }
        }
    }

    fn complete_send(&mut self, mid: MsgId) -> Result<(), SimError> {
        let m = self
            .messages
            .get(&mid)
            .ok_or_else(|| self.protocol(format!("send completion for dead message {}", mid.0)))?;
        let req = m.send_req;
        let (src, dst, tag, bytes) = (m.src, m.dst, m.tag, m.bytes);
        let r = self.req_mut(req, "completing a send on a")?;
        debug_assert!(!r.complete, "send completed twice");
        r.complete = true;
        r.record = Some((src, tag, bytes, None));
        self.flight.on_done(src, req, "send", dst, tag, bytes);
        self.notify_completion(req);
        self.gc_message(mid);
        Ok(())
    }

    fn complete_recv(&mut self, mid: MsgId) -> Result<(), SimError> {
        let (recv_req, payload, src, dst, tag, bytes) = {
            let m = self.msg_mut(mid, "completing a receive on a")?;
            debug_assert_eq!(m.state, MsgState::Arrived);
            (m.recv_req, m.payload.take(), m.src, m.dst, m.tag, m.bytes)
        };
        let Some(req) = recv_req else {
            return Err(self.protocol(format!("receive completion for unbound message {}", mid.0)));
        };
        let r = self.req_mut(req, "completing a receive on a")?;
        debug_assert!(!r.complete, "recv completed twice");
        r.complete = true;
        r.record = Some((src, tag, bytes, payload));
        self.flight.on_done(dst, req, "recv", src, tag, bytes);
        self.notify_completion(req);
        self.gc_message(mid);
        Ok(())
    }

    /// Drops a message once both sides have completed. Requests vanish from
    /// the table once their completion has been reported, so a missing
    /// request counts as complete (and a dead message is already gone).
    fn gc_message(&mut self, mid: MsgId) {
        let Some(m) = self.messages.get(&mid) else {
            return;
        };
        let done =
            |req: ReqId| -> bool { self.requests.get(&req).map(|r| r.complete).unwrap_or(true) };
        let send_done = done(m.send_req);
        let recv_done = m.recv_req.map(done).unwrap_or(false);
        if send_done && recv_done {
            self.messages.remove(&mid);
        }
    }

    /// Resolves every waiting actor whose condition now holds; returns how
    /// many actors were made runnable (the telemetry tick's "woken" count).
    fn resolve_waiters(&mut self, sx: &mut Sx) -> usize {
        let t0 = self.profiling.then(Instant::now);
        // Exec/Sleep completions first.
        let mut woken = 0;
        let delayed = std::mem::take(&mut self.delayed_actors);
        if !delayed.is_empty() && self.rec.is_enabled() {
            // Pops the "computing"/"sleeping" state pushed at the simcall.
            let t = self.now();
            self.rec.with(|r| {
                for actor in &delayed {
                    r.state_pop("rank", actor.0, t);
                }
            });
        }
        for actor in delayed {
            sx.resolve(actor, SimResp::Unit);
            woken += 1;
        }
        // Only waiters queued by notify_completion (or satisfied at Wait
        // post) are examined — never the whole blocked population. Sorting
        // by actor id reproduces the resolution order of a full sweep:
        // satisfaction is monotone within a pass, so the queued set equals
        // the satisfied set.
        let mut ready = std::mem::take(&mut self.ready_waiters);
        ready.sort_unstable();
        for actor in ready.drain(..) {
            let w = self.waiting.remove(&actor).unwrap();
            // An Any/Some waiter satisfied by its first completion still has
            // reverse-index entries for its other requests; drop them so a
            // later Wait on the same requests re-registers cleanly.
            if w.remaining > 0 {
                for r in &w.reqs {
                    self.req_waiter.remove(r);
                }
            }
            if w.mode != WaitMode::Poll {
                // Pops the blocked_in_* state pushed at the Wait simcall.
                self.rec.state_pop("rank", actor.0, self.now());
            }
            let completions = self.collect_completions(&w);
            sx.resolve(actor, SimResp::Done(completions));
            woken += 1;
        }
        // Hand the (empty) buffer back to keep its capacity.
        self.ready_waiters = ready;
        if let Some(t0) = t0 {
            self.phase_resolve += t0.elapsed().as_secs_f64();
        }
        woken
    }

    fn collect_completions(&mut self, w: &Waiting) -> Vec<Completion> {
        let mut out = Vec::new();
        for (index, &rid) in w.reqs.iter().enumerate() {
            let r = self.requests.get_mut(&rid).unwrap();
            if !r.complete {
                continue;
            }
            let (source, tag, bytes, data) = r.record.take().expect("completed request has record");
            out.push(Completion {
                req: rid,
                index,
                source,
                tag,
                bytes,
                data,
            });
            self.requests.remove(&rid);
            self.flight.forget(rid);
            if w.mode == WaitMode::Any {
                break; // exactly one for Waitany
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::matching::env_matches;

    use super::*;

    #[test]
    fn eta_is_null_unless_the_extrapolation_is_meaningful() {
        // Healthy case: 10 simulated seconds to go at 2 sim-s per wall-s.
        assert_eq!(eta_seconds(Some(30.0), 20.0, 2.0), Some(5.0));
        // Already past the hint: clamped to zero, not negative.
        assert_eq!(eta_seconds(Some(30.0), 40.0, 2.0), Some(0.0));
        // No hint.
        assert_eq!(eta_seconds(None, 20.0, 2.0), None);
        // A zero hint must not claim "done now".
        assert_eq!(eta_seconds(Some(0.0), 0.0, 2.0), None);
        // A tier that finished inside the first interval advances no sim
        // time: rate 0 (or NaN from 0/0 upstream) means no extrapolation.
        assert_eq!(eta_seconds(Some(30.0), 0.0, 0.0), None);
        assert_eq!(eta_seconds(Some(30.0), 0.0, f64::NAN), None);
        assert_eq!(eta_seconds(Some(30.0), 0.0, -1.0), None);
        // Denormal rate: the quotient overflows to +inf, which is not an ETA.
        assert_eq!(eta_seconds(Some(1e300), 0.0, 1e-300), None);
    }

    #[test]
    fn env_matching_rules() {
        assert!(env_matches(ANY_SOURCE, ANY_TAG, 3, 7));
        assert!(env_matches(3, 7, 3, 7));
        assert!(!env_matches(2, 7, 3, 7));
        assert!(!env_matches(3, 8, 3, 7));
        assert!(env_matches(3, ANY_TAG, 3, 7));
        assert!(env_matches(ANY_SOURCE, 7, 3, 7));
    }
}
