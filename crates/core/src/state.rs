//! State shared by all ranks of one simulation.
//!
//! Because ranks execute strictly one at a time (see `simix`), these
//! structures see no real contention; the mutexes exist to satisfy Rust's
//! aliasing rules across the rank threads, exactly as the paper's
//! hash-tables behind the `SMPI_*` macros are safe under SimGrid's
//! sequential scheduler.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::comm::CommRegistry;
use crate::sampling::SampleStore;
use crate::shared_mem::{MemoryTracker, SharedHeap};

/// The simulated clock, published by the maestro for rank-side reads.
///
/// This is the anchor of the **local simcall tier**: simulated time only
/// advances inside the maestro's fabric phase, which runs strictly after
/// every runnable actor has yielded the baton — so an actor holding the
/// baton can read the clock from shared state with no possibility of a
/// race, and `MPI_Wtime` costs a load instead of two thread context
/// switches. The baton's mutex hand-off provides the happens-before edge;
/// the orderings here are belt and braces.
#[derive(Debug, Default)]
pub struct SimClock(AtomicU64);

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Publishes a new simulated time (maestro only).
    pub fn publish(&self, t: f64) {
        self.0.store(t.to_bits(), Ordering::Release);
    }
}

/// Per-run configuration visible to ranks.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Multiplier from host wall-clock seconds to simulated seconds for
    /// measured CPU bursts (§3.1: "a factor by which CPU burst durations can
    /// be scaled to account for a performance differential between the host
    /// node and the nodes of the target platform").
    pub cpu_factor: f64,
    /// Whether `shared_malloc` folds allocations across ranks (§3.2
    /// technique #1). When `false`, every rank gets a private buffer and the
    /// tracker shows the unfolded footprint.
    pub ram_folding: bool,
    /// Whether observability is on for this run (set by
    /// [`crate::world::World::metrics`]). Rank-side code uses this to skip
    /// annotation simcalls (e.g. collective regions) entirely when off.
    pub obs: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cpu_factor: 1.0,
            ram_folding: true,
            obs: false,
        }
    }
}

/// Everything ranks share: context-id registry, sampling tables, the folded
/// heap, the memory accountant and the published simulated clock.
#[derive(Debug)]
pub struct SharedState {
    /// Context-id agreement for communicator creation.
    pub registry: CommRegistry,
    /// CPU-burst sampling tables (`SMPI_SAMPLE_*`).
    pub sampling: SampleStore,
    /// Folded allocations (`SMPI_SHARED_MALLOC`).
    pub heap: SharedHeap,
    /// Logical/actual memory accounting for Fig. 16.
    pub memory: MemoryTracker,
    /// Simulated clock published by the maestro (local `MPI_Wtime` reads).
    pub clock: Arc<SimClock>,
    /// Simcalls answered on the actor thread without a baton pass (wtime
    /// reads, sampling decisions, shared-malloc lookups). Feeds the run
    /// report's self-profile.
    pub local_calls: AtomicU64,
    /// Run configuration.
    pub config: RunConfig,
}

impl SharedState {
    /// Fresh state for a run.
    pub fn new(config: RunConfig) -> Self {
        SharedState {
            registry: CommRegistry::new(),
            sampling: SampleStore::new(),
            heap: SharedHeap::new(),
            memory: MemoryTracker::new(),
            clock: Arc::new(SimClock::new()),
            local_calls: AtomicU64::new(0),
            config,
        }
    }

    /// Counts one local-tier simcall (answered without yielding the baton).
    pub fn count_local_call(&self) {
        self.local_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Total local-tier simcalls so far.
    pub fn local_calls(&self) -> u64 {
        self.local_calls.load(Ordering::Relaxed)
    }
}
