//! State shared by all ranks of one simulation.
//!
//! Because ranks execute strictly one at a time (see `simix`), these
//! structures see no real contention; the mutexes exist to satisfy Rust's
//! aliasing rules across the rank threads, exactly as the paper's
//! hash-tables behind the `SMPI_*` macros are safe under SimGrid's
//! sequential scheduler.

use crate::comm::CommRegistry;
use crate::sampling::SampleStore;
use crate::shared_mem::{MemoryTracker, SharedHeap};

/// Per-run configuration visible to ranks.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Multiplier from host wall-clock seconds to simulated seconds for
    /// measured CPU bursts (§3.1: "a factor by which CPU burst durations can
    /// be scaled to account for a performance differential between the host
    /// node and the nodes of the target platform").
    pub cpu_factor: f64,
    /// Whether `shared_malloc` folds allocations across ranks (§3.2
    /// technique #1). When `false`, every rank gets a private buffer and the
    /// tracker shows the unfolded footprint.
    pub ram_folding: bool,
    /// Whether observability is on for this run (set by
    /// [`crate::world::World::metrics`]). Rank-side code uses this to skip
    /// annotation simcalls (e.g. collective regions) entirely when off.
    pub obs: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cpu_factor: 1.0,
            ram_folding: true,
            obs: false,
        }
    }
}

/// Everything ranks share: context-id registry, sampling tables, the folded
/// heap and the memory accountant.
#[derive(Debug)]
pub struct SharedState {
    /// Context-id agreement for communicator creation.
    pub registry: CommRegistry,
    /// CPU-burst sampling tables (`SMPI_SAMPLE_*`).
    pub sampling: SampleStore,
    /// Folded allocations (`SMPI_SHARED_MALLOC`).
    pub heap: SharedHeap,
    /// Logical/actual memory accounting for Fig. 16.
    pub memory: MemoryTracker,
    /// Run configuration.
    pub config: RunConfig,
}

impl SharedState {
    /// Fresh state for a run.
    pub fn new(config: RunConfig) -> Self {
        SharedState {
            registry: CommRegistry::new(),
            sampling: SampleStore::new(),
            heap: SharedHeap::new(),
            memory: MemoryTracker::new(),
            config,
        }
    }
}
