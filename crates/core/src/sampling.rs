//! CPU-burst sampling (paper §3.1, §5.2).
//!
//! On-line simulation executes application code for real; the cost is that
//! simulating `p` ranks on one node takes `p` times the compute. SMPI's
//! answer is to *sample*: execute and wall-clock-time a CPU burst only its
//! first `n` occurrences, then replay the mean as a simulated delay.
//!
//! * [`Ctx::sample_local`] — `SMPI_SAMPLE_LOCAL(n)`: each rank measures its
//!   own first `n` executions;
//! * [`Ctx::sample_global`] — `SMPI_SAMPLE_GLOBAL(n)`: `n` measurements are
//!   shared across all ranks (SPMD regularity assumption), making simulation
//!   compute time independent of the rank count;
//! * [`Ctx::sample_delay`] — `SMPI_SAMPLE_DELAY(flops)`: never execute, burn
//!   the given flops on the simulated host (the paper's `n = 0` case).
//!
//! Keys play the role of the paper's "unique identifier based on source file
//! name and line number": pass something like `concat!(file!(), ":", line!())`
//! or any stable site name.

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::Mutex;

use crate::ctx::Ctx;

/// Aggregated timings for one sampling site.
#[derive(Debug, Default, Clone, Copy)]
pub struct SampleStats {
    /// Number of executions measured so far.
    pub count: u32,
    /// Sum of simulated durations of the measured executions.
    pub total: f64,
    /// Sum of squared durations (for the adaptive-sampling extension).
    pub total_sq: f64,
}

impl SampleStats {
    /// Mean measured duration.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Sample standard deviation of the measurements (0 for < 2 samples).
    pub fn std(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.total_sq - self.total * self.total / n) / (n - 1.0);
        var.max(0.0).sqrt()
    }

    /// Coefficient of variation (std / mean); infinite for a zero mean so
    /// the adaptive sampler keeps measuring degenerate bursts.
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m <= 0.0 {
            f64::INFINITY
        } else {
            self.std() / m
        }
    }
}

#[derive(Debug, PartialEq, Eq, Hash, Clone)]
enum Key {
    Local(String, u32),
    Global(String),
}

/// The shared sampling table.
#[derive(Debug, Default)]
pub struct SampleStore {
    inner: Mutex<HashMap<Key, SampleStats>>,
}

impl SampleStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics of a local site for one rank (None if never sampled).
    pub fn local_stats(&self, site: &str, rank: u32) -> Option<SampleStats> {
        self.inner
            .lock()
            .get(&Key::Local(site.to_string(), rank))
            .copied()
    }

    /// Statistics of a global site.
    pub fn global_stats(&self, site: &str) -> Option<SampleStats> {
        self.inner
            .lock()
            .get(&Key::Global(site.to_string()))
            .copied()
    }

    fn decide(&self, key: Key, n: u32) -> Decision {
        let map = self.inner.lock();
        match map.get(&key) {
            Some(stats) if stats.count >= n => Decision::Replay(stats.mean()),
            _ => Decision::Measure(key),
        }
    }

    fn record(&self, key: Key, duration: f64) {
        let mut map = self.inner.lock();
        let stats = map.entry(key).or_default();
        stats.count += 1;
        stats.total += duration;
        stats.total_sq += duration * duration;
    }
}

enum Decision {
    Measure(Key),
    Replay(f64),
}

impl Ctx<'_> {
    /// `SMPI_SAMPLE_LOCAL(n)`: executes and times `body` for this rank's
    /// first `n` visits of `site`, then replays the mean as a simulated
    /// delay (the body is *not* executed; data it would produce is stale —
    /// the erroneous-results trade-off of §3.1).
    ///
    /// Returns `true` when the body actually ran.
    pub fn sample_local(&self, site: &str, n: u32, body: impl FnOnce()) -> bool {
        assert!(n > 0, "use sample_delay for the n = 0 case");
        let key = Key::Local(site.to_string(), self.rank() as u32);
        self.sample(key, n, body)
    }

    /// `SMPI_SAMPLE_GLOBAL(n)`: like [`sample_local`](Self::sample_local)
    /// but the `n` measurements are pooled across all ranks, so total
    /// simulation compute time does not grow with the rank count.
    pub fn sample_global(&self, site: &str, n: u32, body: impl FnOnce()) -> bool {
        assert!(n > 0, "use sample_delay for the n = 0 case");
        self.sample(Key::Global(site.to_string()), n, body)
    }

    /// `SMPI_SAMPLE_DELAY(flops)`: never executes anything; burns `flops`
    /// on the simulated host (the user-supplied-cost mode, which is also
    /// what makes RAM-folding technique #2 sound: the skipped code's arrays
    /// are never referenced).
    pub fn sample_delay(&self, flops: f64) {
        self.compute(flops);
    }

    fn sample(&self, key: Key, n: u32, body: impl FnOnce()) -> bool {
        // Local simcall tier: the measure-or-replay decision reads shared
        // state on the actor thread; only the resulting simulated delay
        // (the sleep below) crosses to the maestro.
        self.shared.count_local_call();
        match self.shared.sampling.decide(key.clone(), n) {
            Decision::Measure(key) => {
                let start = Instant::now();
                body();
                let wall = start.elapsed().as_secs_f64();
                let simulated = wall * self.shared.config.cpu_factor;
                self.shared.sampling.record(key, simulated);
                // Charge the burst to the simulated clock.
                self.sleep(simulated);
                true
            }
            Decision::Replay(mean) => {
                self.sleep(mean);
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_counts_and_means() {
        let s = SampleStore::new();
        let k = Key::Local("x".into(), 0);
        match s.decide(k.clone(), 2) {
            Decision::Measure(_) => {}
            Decision::Replay(_) => panic!("should measure first"),
        }
        s.record(k.clone(), 1.0);
        s.record(k.clone(), 3.0);
        match s.decide(k.clone(), 2) {
            Decision::Replay(mean) => assert_eq!(mean, 2.0),
            Decision::Measure(_) => panic!("should replay after n"),
        }
        assert_eq!(s.local_stats("x", 0).unwrap().count, 2);
    }

    #[test]
    fn local_keys_are_per_rank() {
        let s = SampleStore::new();
        s.record(Key::Local("x".into(), 0), 1.0);
        assert!(s.local_stats("x", 1).is_none());
        assert!(s.global_stats("x").is_none());
    }

    #[test]
    fn global_key_pools_across_ranks() {
        let s = SampleStore::new();
        s.record(Key::Global("y".into()), 1.0);
        s.record(Key::Global("y".into()), 2.0);
        let g = s.global_stats("y").unwrap();
        assert_eq!(g.count, 2);
        assert!((g.mean() - 1.5).abs() < 1e-15);
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        assert_eq!(SampleStats::default().mean(), 0.0);
    }
}
