//! `TITRACE2`: the binary, delta-encoded, block-structured trace codec.
//!
//! TITRACE v1 (see [`crate::capture`]) is a line-oriented text format that
//! holds the whole trace in memory on both ends. That is fine for the
//! paper's NAS-class runs and unbeatable for debugging, but it is the
//! wrong shape for capture→replay at large rank counts: a 16k-rank run
//! emits millions of ops, and both the capture side (one growing `Vec`
//! per rank) and the replay side (decode everything, then iterate) scale
//! their memory with trace length. TITRACE2 fixes the *shape*:
//!
//! * **Per-rank delta streams.** Op arguments are encoded as zigzag
//!   varint deltas against the previous op of the same kind: request
//!   indices against the previous wait's last index, send/recv fields
//!   against the previous post, floats as XOR of the previous value's
//!   bits (byte-swapped so the entropy lands in the varint's low bytes).
//!   MPI traces are overwhelmingly regular — ranks talk to the same
//!   neighbours with the same tags and sizes — so most fields collapse
//!   to one byte.
//! * **Dictionaries.** Region/collective names live once in a shared
//!   string dictionary (footer); repeated (peer, cid, tag) route triples
//!   are referenced by a per-block route index after first use.
//! * **Self-contained blocks.** Ops are grouped into blocks of
//!   [`DEFAULT_BLOCK_OPS`]; every delta context resets at a block
//!   boundary, so any block can be decoded knowing only the dictionary.
//!   That is what makes *streaming* work on both ends: the capture
//!   writer seals and forgets blocks as the run progresses (bounded
//!   staging memory), and the replay reader ([`TiV2Reader`]) decodes
//!   block-by-block behind an iterator ([`TiOpIter`]) — replay residency
//!   is bounded by block size, not trace length.
//! * **Intra-block LZ.** Sealed payloads run through a small
//!   deterministic LZSS pass (byte-oriented, 4 KiB window); whole-op
//!   patterns that repeat verbatim (steady-state iteration loops)
//!   collapse to back-references. A block keeps whichever of raw/LZ is
//!   smaller.
//!
//! The container is versioned by magic: v1 files start with `TITRACE v1`,
//! v2 files with `TITRACE2`. Loaders sniff the first bytes, so both
//! formats stay readable forever behind one entry point
//! (`smpi-replay::load_trace`). A footer (dictionary + block index +
//! trailer magic) makes files seekable from the end without scanning.
//!
//! Layout (all integers are LEB128 varints unless noted):
//!
//! ```text
//! header:  "TITRACE2"  varint(nranks)
//! block*:  varint(rank) varint(nops) u8(comp) varint(raw_len)
//!          varint(stored_len) stored_len bytes of payload
//! footer:  varint(ndict) ndict × { varint(len) utf8 bytes }
//!          varint(nblocks) nblocks × { varint(rank) varint(nops)
//!                                      varint(offset_delta) }
//!          varint(total_ops)
//! tail:    u64-LE(footer_len)  "TIT2END\n"
//! ```

use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use crate::capture::{TiOp, TiTrace, TraceIoError};
use crate::runtime::WaitMode;
use smpi_obs::CodecStats;

/// Leading magic of a `TITRACE2` file.
pub const TIT2_MAGIC: &[u8; 8] = b"TITRACE2";
/// Trailing magic (lets a reader validate the file end before seeking).
pub const TIT2_TRAILER: &[u8; 8] = b"TIT2END\n";
/// Default ops per sealed block. Blocks are the unit of capture flushing
/// and replay residency; 4096 ops keep both in the tens of kilobytes.
pub const DEFAULT_BLOCK_OPS: usize = 4096;
/// Default global staging budget for the streaming capture writer.
pub const DEFAULT_WRITER_BUDGET: usize = 4 << 20;

// Sanity caps applied while decoding untrusted bytes: a corrupted count
// must produce a typed error, not a giant allocation.
const MAX_RANKS: u64 = 1 << 22;
const MAX_DICT: u64 = 1 << 20;
const MAX_NAME: u64 = 1 << 16;
const MAX_BLOCKS: u64 = 1 << 26;
const MAX_BLOCK_OPS: u64 = 1 << 24;
const MAX_RAW_LEN: u64 = 1 << 28;

/// Typed `TITRACE2` decode failure (corruption, truncation, bad magic).
#[derive(Debug, Clone, PartialEq)]
pub struct TiV2Error {
    /// What was being decoded when it went wrong.
    pub context: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl TiV2Error {
    pub(crate) fn new(context: &'static str, message: impl Into<String>) -> Self {
        TiV2Error {
            context,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TiV2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TITRACE2 decode error in {}: {}",
            self.context, self.message
        )
    }
}

impl std::error::Error for TiV2Error {}

/// Primitive wire encodings: LEB128 varints, zigzag, float XOR-deltas.
/// Public so the property tests can hammer the primitives directly.
pub mod wire {
    use super::TiV2Error;

    /// Appends `v` as an LEB128 varint (1–10 bytes).
    pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                buf.push(b);
                return;
            }
            buf.push(b | 0x80);
        }
    }

    /// Reads an LEB128 varint at `*pos`, advancing it. Truncated or
    /// overlong encodings are typed errors.
    pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, TiV2Error> {
        let mut v: u64 = 0;
        for shift in 0..10 {
            let b = *buf
                .get(*pos)
                .ok_or_else(|| TiV2Error::new("varint", "truncated varint"))?;
            *pos += 1;
            if shift == 9 && b > 1 {
                return Err(TiV2Error::new("varint", "varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << (7 * shift);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(TiV2Error::new("varint", "varint longer than 10 bytes"))
    }

    /// Zigzag-maps a signed delta to unsigned (small magnitudes stay small).
    /// Encoded size of `v` as an unsigned varint, without encoding it.
    pub fn uvarint_len(mut v: u64) -> usize {
        let mut n = 1;
        while v >= 0x80 {
            v >>= 7;
            n += 1;
        }
        n
    }

    pub fn zigzag(v: i64) -> u64 {
        ((v << 1) ^ (v >> 63)) as u64
    }

    /// Inverse of [`zigzag`].
    pub fn unzigzag(v: u64) -> i64 {
        ((v >> 1) as i64) ^ -((v & 1) as i64)
    }

    /// Appends a signed value as a zigzag varint.
    pub fn put_ivarint(buf: &mut Vec<u8>, v: i64) {
        put_uvarint(buf, zigzag(v));
    }

    /// Reads a zigzag varint.
    pub fn get_ivarint(buf: &[u8], pos: &mut usize) -> Result<i64, TiV2Error> {
        Ok(unzigzag(get_uvarint(buf, pos)?))
    }

    /// Delta-encodes a float against the previous one in its stream:
    /// XOR of the bit patterns, byte-swapped so that the high (sign /
    /// exponent / leading-mantissa) bytes — the ones that actually change —
    /// land in the varint's low bytes. A repeated value costs one byte.
    pub fn f64_delta(prev: f64, cur: f64) -> u64 {
        (prev.to_bits() ^ cur.to_bits()).swap_bytes()
    }

    /// Inverse of [`f64_delta`].
    pub fn f64_undelta(prev: f64, delta: u64) -> f64 {
        f64::from_bits(prev.to_bits() ^ delta.swap_bytes())
    }
}

/// Byte-oriented LZSS over sealed block payloads: greedy matcher, 4 KiB
/// window, 3..=18-byte matches, one control byte per 8 tokens. Chosen for
/// determinism and zero dependencies rather than ratio — the delta layer
/// above it has already removed most entropy, and steady-state loops leave
/// long verbatim repeats that back-references fold cheaply.
pub mod lz {
    use super::TiV2Error;

    const MIN_MATCH: usize = 3;
    const MAX_MATCH: usize = 18;
    const WINDOW: usize = 4096;

    fn hash3(b: &[u8]) -> usize {
        let v = u32::from(b[0]) << 16 | u32::from(b[1]) << 8 | u32::from(b[2]);
        (v.wrapping_mul(2654435761) >> 20) as usize
    }

    /// Compresses `src`. Deterministic: same input, same output, always.
    pub fn compress(src: &[u8]) -> Vec<u8> {
        compress_with_dict(&[], src)
    }

    /// Compresses `src` with `dict` as a preset window: back-references may
    /// reach into `dict` as if it preceded `src`. Blocks of one trace are
    /// near-clones of each other (same program on every rank), so using the
    /// file's first block as the shared dictionary folds that cross-block
    /// redundancy without giving up per-block random access.
    pub fn compress_with_dict(dict: &[u8], src: &[u8]) -> Vec<u8> {
        let all = [dict, src].concat();
        let n = all.len();
        let start = dict.len();
        let mut out = Vec::with_capacity(src.len() / 2 + 16);
        let mut table = vec![u32::MAX; 4096];
        for j in 0..start.saturating_sub(MIN_MATCH - 1) {
            table[hash3(&all[j..])] = j as u32;
        }
        let src = &all[..];
        let mut ctrl_pos = 0usize;
        let mut ctrl_bit = 8u32;
        let mut i = start;
        while i < n {
            if ctrl_bit == 8 {
                ctrl_pos = out.len();
                out.push(0);
                ctrl_bit = 0;
            }
            let mut matched = false;
            if i + MIN_MATCH <= n {
                let h = hash3(&src[i..]);
                let cand = table[h];
                table[h] = i as u32;
                if cand != u32::MAX {
                    let cand = cand as usize;
                    if cand < i
                        && i - cand <= WINDOW
                        && src[cand..cand + MIN_MATCH] == src[i..i + MIN_MATCH]
                    {
                        let max_l = MAX_MATCH.min(n - i);
                        let mut l = MIN_MATCH;
                        while l < max_l && src[cand + l] == src[i + l] {
                            l += 1;
                        }
                        let off = i - cand - 1; // 0..=4095
                        out[ctrl_pos] |= 1 << ctrl_bit;
                        out.push((off >> 4) as u8);
                        out.push((((off & 0xf) as u8) << 4) | (l - MIN_MATCH) as u8);
                        // Seed the table with the positions the match
                        // covers so later data can reference them too.
                        for j in (i + 1)..(i + l).min(n.saturating_sub(MIN_MATCH - 1)) {
                            table[hash3(&src[j..])] = j as u32;
                        }
                        i += l;
                        matched = true;
                    }
                }
            }
            if !matched {
                out.push(src[i]);
                i += 1;
            }
            ctrl_bit += 1;
        }
        out
    }

    /// Decompresses exactly `raw_len` bytes; anything short, long, or
    /// referencing before the start of output is a typed error.
    pub fn decompress(src: &[u8], raw_len: usize) -> Result<Vec<u8>, TiV2Error> {
        decompress_with_dict(&[], src, raw_len)
    }

    /// [`decompress`] with a preset dictionary: offsets may reach back into
    /// `dict`, which logically precedes the output.
    pub fn decompress_with_dict(
        dict: &[u8],
        src: &[u8],
        raw_len: usize,
    ) -> Result<Vec<u8>, TiV2Error> {
        let err = |m: &str| TiV2Error::new("lz block", m.to_string());
        let mut out = Vec::with_capacity(raw_len.min(1 << 24));
        let mut i = 0usize;
        while out.len() < raw_len {
            let ctrl = *src.get(i).ok_or_else(|| err("truncated control byte"))?;
            i += 1;
            let mut bit = 0;
            while bit < 8 && out.len() < raw_len {
                if ctrl >> bit & 1 == 1 {
                    let b0 = *src.get(i).ok_or_else(|| err("truncated match"))?;
                    let b1 = *src.get(i + 1).ok_or_else(|| err("truncated match"))?;
                    i += 2;
                    let off = ((usize::from(b0) << 4) | usize::from(b1 >> 4)) + 1;
                    let l = usize::from(b1 & 0xf) + MIN_MATCH;
                    if off > dict.len() + out.len() {
                        return Err(err("match offset before start of block"));
                    }
                    if out.len() + l > raw_len {
                        return Err(err("match overruns declared length"));
                    }
                    for _ in 0..l {
                        let from = dict.len() + out.len() - off;
                        let b = if from < dict.len() {
                            dict[from]
                        } else {
                            out[from - dict.len()]
                        };
                        out.push(b);
                    }
                } else {
                    let b = *src.get(i).ok_or_else(|| err("truncated literal"))?;
                    i += 1;
                    out.push(b);
                }
                bit += 1;
            }
        }
        if i != src.len() {
            return Err(err("trailing bytes after declared length"));
        }
        Ok(out)
    }
}

// Op codes of the block payload.
const OP_COMPUTE: u8 = 0;
const OP_SLEEP: u8 = 1;
const OP_SEND_NEW: u8 = 2;
const OP_SEND_ROUTE: u8 = 3;
const OP_RECV_NEW: u8 = 4;
const OP_RECV_ROUTE: u8 = 5;
const OP_WAIT_BASE: u8 = 6; // +0 all, +1 any, +2 some, +3 poll
const OP_REGION_ENTER: u8 = 10;
const OP_REGION_EXIT: u8 = 11;
const OP_COLL: u8 = 12;
/// Waitall of exactly one request, the one after the previous wait's last —
/// the ubiquitous post/wait lockstep. One byte total.
const OP_WAIT_NEXT: u8 = 13;
/// Compute whose flop count is a non-negative integer, stored as an
/// absolute uvarint (cheaper than the xor-delta for the first compute of a
/// block, and exact: integers below 2^53 round-trip through f64).
const OP_COMPUTE_INT: u8 = 14;
/// Route-opening send/recv that differs from the previous post of the same
/// direction only in the peer — constant tag/cid/size neighbor exchanges.
const OP_SEND_NEW_SAME: u8 = 15;
const OP_RECV_NEW_SAME: u8 = 16;

fn mode_code(mode: WaitMode) -> u8 {
    match mode {
        WaitMode::All => 0,
        WaitMode::Any => 1,
        WaitMode::Some => 2,
        WaitMode::Poll => 3,
    }
}

fn code_mode(code: u8) -> Option<WaitMode> {
    match code {
        0 => Some(WaitMode::All),
        1 => Some(WaitMode::Any),
        2 => Some(WaitMode::Some),
        3 => Some(WaitMode::Poll),
        _ => None,
    }
}

/// Delta context of one block. Reset at every block boundary — that reset
/// is the self-containment invariant the streaming reader relies on.
struct BlockCtx {
    prev_compute: f64,
    prev_sleep: f64,
    // Previous post fields (wrapping deltas; all-zero at block start).
    last_send: (u32, u32, i32, u64),
    last_recv: (i32, u32, i32, u64),
    // Route tables: (peer, cid, tag) triples in first-use order, with the
    // last byte count sent/received over that route.
    send_routes: Vec<(u32, u32, i32, u64)>,
    recv_routes: Vec<(i32, u32, i32, u64)>,
    prev_wait_last: u32,
}

impl Default for BlockCtx {
    fn default() -> Self {
        BlockCtx {
            prev_compute: 0.0,
            prev_sleep: 0.0,
            last_send: (0, 0, 0, 0),
            last_recv: (0, 0, 0, 0),
            send_routes: Vec::new(),
            recv_routes: Vec::new(),
            // MAX, not 0, so the very first request of a block (index 0)
            // is "the one after the previous wait's last" and takes the
            // one-byte OP_WAIT_NEXT path.
            prev_wait_last: u32::MAX,
        }
    }
}

/// Encode-side route lookup (the decode side only needs the Vec order).
#[derive(Default)]
struct BlockEncCtx {
    ctx: BlockCtx,
    send_ix: HashMap<(u32, u32, i32), u32>,
    recv_ix: HashMap<(i32, u32, i32), u32>,
}

fn encode_ops(ops: &[TiOp], mut intern: impl FnMut(&str) -> u32, buf: &mut Vec<u8>) {
    use wire::*;
    let mut e = BlockEncCtx::default();
    for op in ops {
        match op {
            TiOp::Compute { flops } => {
                let d = f64_delta(e.ctx.prev_compute, *flops);
                // Sign-positive excludes -0.0: it compares == 0.0 but has
                // a different bit pattern, and this path must stay
                // bit-exact for encode -> decode -> encode byte stability.
                let integral = flops.is_sign_positive()
                    && flops.fract() == 0.0
                    && *flops <= 9_007_199_254_740_992.0; // 2^53: exact in f64
                if integral && uvarint_len(*flops as u64) < uvarint_len(d) {
                    buf.push(OP_COMPUTE_INT);
                    put_uvarint(buf, *flops as u64);
                } else {
                    buf.push(OP_COMPUTE);
                    put_uvarint(buf, d);
                }
                e.ctx.prev_compute = *flops;
            }
            TiOp::Sleep { secs } => {
                buf.push(OP_SLEEP);
                put_uvarint(buf, f64_delta(e.ctx.prev_sleep, *secs));
                e.ctx.prev_sleep = *secs;
            }
            TiOp::Send {
                dst,
                cid,
                tag,
                bytes,
            } => {
                let key = (*dst, *cid, *tag);
                if let Some(&ix) = e.send_ix.get(&key) {
                    buf.push(OP_SEND_ROUTE);
                    put_uvarint(buf, u64::from(ix));
                    let route = &mut e.ctx.send_routes[ix as usize];
                    put_ivarint(buf, bytes.wrapping_sub(route.3) as i64);
                    route.3 = *bytes;
                } else {
                    let l = e.ctx.last_send;
                    if *cid == l.1 && *tag == l.2 && *bytes == l.3 {
                        buf.push(OP_SEND_NEW_SAME);
                        put_ivarint(buf, i64::from(dst.wrapping_sub(l.0) as i32));
                    } else {
                        buf.push(OP_SEND_NEW);
                        put_ivarint(buf, i64::from(dst.wrapping_sub(l.0) as i32));
                        put_ivarint(buf, i64::from(cid.wrapping_sub(l.1) as i32));
                        put_ivarint(buf, i64::from(tag.wrapping_sub(l.2)));
                        put_ivarint(buf, bytes.wrapping_sub(l.3) as i64);
                    }
                    e.send_ix.insert(key, e.ctx.send_routes.len() as u32);
                    e.ctx.send_routes.push((*dst, *cid, *tag, *bytes));
                }
                e.ctx.last_send = (*dst, *cid, *tag, *bytes);
            }
            TiOp::Recv {
                src,
                cid,
                tag,
                max_bytes,
            } => {
                let key = (*src, *cid, *tag);
                if let Some(&ix) = e.recv_ix.get(&key) {
                    buf.push(OP_RECV_ROUTE);
                    put_uvarint(buf, u64::from(ix));
                    let route = &mut e.ctx.recv_routes[ix as usize];
                    put_ivarint(buf, max_bytes.wrapping_sub(route.3) as i64);
                    route.3 = *max_bytes;
                } else {
                    let l = e.ctx.last_recv;
                    if *cid == l.1 && *tag == l.2 && *max_bytes == l.3 {
                        buf.push(OP_RECV_NEW_SAME);
                        put_ivarint(buf, i64::from(src.wrapping_sub(l.0)));
                    } else {
                        buf.push(OP_RECV_NEW);
                        put_ivarint(buf, i64::from(src.wrapping_sub(l.0)));
                        put_ivarint(buf, i64::from(cid.wrapping_sub(l.1) as i32));
                        put_ivarint(buf, i64::from(tag.wrapping_sub(l.2)));
                        put_ivarint(buf, max_bytes.wrapping_sub(l.3) as i64);
                    }
                    e.recv_ix.insert(key, e.ctx.recv_routes.len() as u32);
                    e.ctx.recv_routes.push((*src, *cid, *tag, *max_bytes));
                }
                e.ctx.last_recv = (*src, *cid, *tag, *max_bytes);
            }
            TiOp::Wait { reqs, mode } => {
                if *mode == WaitMode::All
                    && reqs.len() == 1
                    && reqs[0] == e.ctx.prev_wait_last.wrapping_add(1)
                {
                    buf.push(OP_WAIT_NEXT);
                    e.ctx.prev_wait_last = reqs[0];
                    continue;
                }
                buf.push(OP_WAIT_BASE + mode_code(*mode));
                put_uvarint(buf, reqs.len() as u64);
                let mut prev = e.ctx.prev_wait_last;
                for (i, &req) in reqs.iter().enumerate() {
                    // First index is relative to the previous wait's last;
                    // the rest are gap-1 deltas (consecutive indices, the
                    // common waitall pattern, cost one byte each).
                    let base = if i == 0 { prev } else { prev.wrapping_add(1) };
                    put_ivarint(buf, i64::from(req.wrapping_sub(base) as i32));
                    prev = req;
                }
                if !reqs.is_empty() {
                    e.ctx.prev_wait_last = prev;
                }
            }
            TiOp::Region { name, enter } => {
                buf.push(if *enter {
                    OP_REGION_ENTER
                } else {
                    OP_REGION_EXIT
                });
                put_uvarint(buf, u64::from(intern(name)));
            }
            TiOp::Coll {
                name,
                algo,
                span,
                posts,
            } => {
                buf.push(OP_COLL);
                put_uvarint(buf, u64::from(intern(name)));
                let algo_plus1 = if algo.is_empty() {
                    0
                } else {
                    u64::from(intern(algo)) + 1
                };
                put_uvarint(buf, algo_plus1);
                put_uvarint(buf, u64::from(*span));
                put_uvarint(buf, u64::from(*posts));
            }
        }
    }
}

fn decode_ops(buf: &[u8], nops: usize, dict: &[String]) -> Result<Vec<TiOp>, TiV2Error> {
    use wire::*;
    let err = |m: String| TiV2Error::new("block payload", m);
    let name_of = |id: u64| -> Result<String, TiV2Error> {
        dict.get(id as usize)
            .cloned()
            .ok_or_else(|| err(format!("dictionary id {id} out of range ({})", dict.len())))
    };
    let mut c = BlockCtx::default();
    let mut ops = Vec::with_capacity(nops.min(MAX_BLOCK_OPS as usize));
    let mut pos = 0usize;
    for _ in 0..nops {
        let code = *buf
            .get(pos)
            .ok_or_else(|| err("truncated op code".into()))?;
        pos += 1;
        let op = match code {
            OP_COMPUTE => {
                let d = get_uvarint(buf, &mut pos)?;
                let flops = f64_undelta(c.prev_compute, d);
                c.prev_compute = flops;
                TiOp::Compute { flops }
            }
            OP_SLEEP => {
                let d = get_uvarint(buf, &mut pos)?;
                let secs = f64_undelta(c.prev_sleep, d);
                c.prev_sleep = secs;
                TiOp::Sleep { secs }
            }
            OP_SEND_NEW => {
                let l = c.last_send;
                let dst = l.0.wrapping_add(get_ivarint(buf, &mut pos)? as u32);
                let cid = l.1.wrapping_add(get_ivarint(buf, &mut pos)? as u32);
                let tag = l.2.wrapping_add(get_ivarint(buf, &mut pos)? as i32);
                let bytes = l.3.wrapping_add(get_ivarint(buf, &mut pos)? as u64);
                c.send_routes.push((dst, cid, tag, bytes));
                c.last_send = (dst, cid, tag, bytes);
                TiOp::Send {
                    dst,
                    cid,
                    tag,
                    bytes,
                }
            }
            OP_SEND_ROUTE => {
                let ix = get_uvarint(buf, &mut pos)? as usize;
                let d = get_ivarint(buf, &mut pos)?;
                let route = c
                    .send_routes
                    .get_mut(ix)
                    .ok_or_else(|| err(format!("send route {ix} not yet defined")))?;
                route.3 = route.3.wrapping_add(d as u64);
                let (dst, cid, tag, bytes) = *route;
                c.last_send = (dst, cid, tag, bytes);
                TiOp::Send {
                    dst,
                    cid,
                    tag,
                    bytes,
                }
            }
            OP_RECV_NEW => {
                let l = c.last_recv;
                let src = l.0.wrapping_add(get_ivarint(buf, &mut pos)? as i32);
                let cid = l.1.wrapping_add(get_ivarint(buf, &mut pos)? as u32);
                let tag = l.2.wrapping_add(get_ivarint(buf, &mut pos)? as i32);
                let max_bytes = l.3.wrapping_add(get_ivarint(buf, &mut pos)? as u64);
                c.recv_routes.push((src, cid, tag, max_bytes));
                c.last_recv = (src, cid, tag, max_bytes);
                TiOp::Recv {
                    src,
                    cid,
                    tag,
                    max_bytes,
                }
            }
            OP_RECV_ROUTE => {
                let ix = get_uvarint(buf, &mut pos)? as usize;
                let d = get_ivarint(buf, &mut pos)?;
                let route = c
                    .recv_routes
                    .get_mut(ix)
                    .ok_or_else(|| err(format!("recv route {ix} not yet defined")))?;
                route.3 = route.3.wrapping_add(d as u64);
                let (src, cid, tag, max_bytes) = *route;
                c.last_recv = (src, cid, tag, max_bytes);
                TiOp::Recv {
                    src,
                    cid,
                    tag,
                    max_bytes,
                }
            }
            OP_COMPUTE_INT => {
                let flops = get_uvarint(buf, &mut pos)? as f64;
                c.prev_compute = flops;
                TiOp::Compute { flops }
            }
            OP_WAIT_NEXT => {
                let req = c.prev_wait_last.wrapping_add(1);
                c.prev_wait_last = req;
                TiOp::Wait {
                    reqs: vec![req],
                    mode: WaitMode::All,
                }
            }
            OP_SEND_NEW_SAME => {
                let l = c.last_send;
                let dst = l.0.wrapping_add(get_ivarint(buf, &mut pos)? as u32);
                let (cid, tag, bytes) = (l.1, l.2, l.3);
                c.send_routes.push((dst, cid, tag, bytes));
                c.last_send = (dst, cid, tag, bytes);
                TiOp::Send {
                    dst,
                    cid,
                    tag,
                    bytes,
                }
            }
            OP_RECV_NEW_SAME => {
                let l = c.last_recv;
                let src = l.0.wrapping_add(get_ivarint(buf, &mut pos)? as i32);
                let (cid, tag, max_bytes) = (l.1, l.2, l.3);
                c.recv_routes.push((src, cid, tag, max_bytes));
                c.last_recv = (src, cid, tag, max_bytes);
                TiOp::Recv {
                    src,
                    cid,
                    tag,
                    max_bytes,
                }
            }
            code if (OP_WAIT_BASE..OP_WAIT_BASE + 4).contains(&code) => {
                let mode = code_mode(code - OP_WAIT_BASE).expect("range-checked");
                let n = get_uvarint(buf, &mut pos)? as usize;
                // Each request index costs at least one byte, so a count
                // beyond the remaining payload is corruption.
                if n > buf.len() - pos {
                    return Err(err(format!("wait count {n} exceeds remaining payload")));
                }
                let mut reqs = Vec::with_capacity(n);
                let mut prev = c.prev_wait_last;
                for i in 0..n {
                    let base = if i == 0 { prev } else { prev.wrapping_add(1) };
                    let req = base.wrapping_add(get_ivarint(buf, &mut pos)? as u32);
                    reqs.push(req);
                    prev = req;
                }
                if !reqs.is_empty() {
                    c.prev_wait_last = prev;
                }
                TiOp::Wait { reqs, mode }
            }
            OP_REGION_ENTER | OP_REGION_EXIT => {
                let name = name_of(get_uvarint(buf, &mut pos)?)?;
                TiOp::Region {
                    name,
                    enter: code == OP_REGION_ENTER,
                }
            }
            OP_COLL => {
                let name = name_of(get_uvarint(buf, &mut pos)?)?;
                let algo_plus1 = get_uvarint(buf, &mut pos)?;
                let algo = if algo_plus1 == 0 {
                    String::new()
                } else {
                    name_of(algo_plus1 - 1)?
                };
                let span = get_uvarint(buf, &mut pos)?;
                let posts = get_uvarint(buf, &mut pos)?;
                if span > u64::from(u32::MAX) || posts > u64::from(u32::MAX) {
                    return Err(err("coll span/posts out of u32 range".into()));
                }
                TiOp::Coll {
                    name,
                    algo,
                    span: span as u32,
                    posts: posts as u32,
                }
            }
            other => return Err(err(format!("unknown op code {other}"))),
        };
        ops.push(op);
    }
    if pos != buf.len() {
        return Err(err(format!(
            "{} trailing bytes after {} ops",
            buf.len() - pos,
            nops
        )));
    }
    Ok(ops)
}

/// Location + shape of one sealed block (mirrored in the footer index).
#[derive(Debug, Clone, Copy, PartialEq)]
struct BlockMeta {
    rank: u32,
    nops: u64,
    /// Absolute file offset of the block header.
    offset: u64,
    /// Total encoded length of the block (header + stored payload).
    /// Derived from offset deltas when parsing the footer.
    len: u64,
}

/// Streaming `TITRACE2` encoder. Feed it sealed runs of ops per rank in
/// capture order ([`write_block`](Self::write_block)); it writes them out
/// immediately and keeps only the dictionary and the block index. Call
/// [`finish`](Self::finish) to append the footer.
pub struct TiV2Writer<W: Write> {
    out: W,
    pos: u64,
    nranks: usize,
    header_written: bool,
    dict: Vec<String>,
    dict_ix: HashMap<String, u32>,
    blocks: Vec<BlockMeta>,
    total_ops: u64,
    bytes_raw: u64,
    blocks_compressed: u64,
    /// Raw payload of the first block, kept as the shared LZ dictionary
    /// for every later block (bounded by one block's payload size).
    anchor: Option<Vec<u8>>,
}

impl<W: Write> TiV2Writer<W> {
    /// A writer for an `nranks`-rank trace, encoding into `out`.
    pub fn new(out: W, nranks: usize) -> Self {
        TiV2Writer {
            out,
            pos: 0,
            nranks,
            header_written: false,
            dict: Vec::new(),
            dict_ix: HashMap::new(),
            blocks: Vec::new(),
            total_ops: 0,
            bytes_raw: 0,
            blocks_compressed: 0,
            anchor: None,
        }
    }

    fn ensure_header(&mut self) -> std::io::Result<()> {
        if self.header_written {
            return Ok(());
        }
        self.header_written = true;
        let mut head = Vec::with_capacity(16);
        head.extend_from_slice(TIT2_MAGIC);
        wire::put_uvarint(&mut head, self.nranks as u64);
        self.out.write_all(&head)?;
        self.pos += head.len() as u64;
        Ok(())
    }

    /// Encodes `ops` as one self-contained block of rank `rank` and writes
    /// it through. Blocks of the same rank must arrive in op order.
    pub fn write_block(&mut self, rank: u32, ops: &[TiOp]) -> std::io::Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        self.ensure_header()?;
        assert!((rank as usize) < self.nranks, "block rank out of range");
        let mut payload = Vec::with_capacity(ops.len() * 4);
        // Borrow-splitting: hand encode_ops an interner over our fields.
        let (dict, dict_ix) = (&mut self.dict, &mut self.dict_ix);
        encode_ops(
            ops,
            |name| {
                if let Some(&ix) = dict_ix.get(name) {
                    return ix;
                }
                let ix = dict.len() as u32;
                dict.push(name.to_string());
                dict_ix.insert(name.to_string(), ix);
                ix
            },
            &mut payload,
        );
        let packed = lz::compress(&payload);
        let mut comp: u8 = if packed.len() < payload.len() { 1 } else { 0 };
        let mut stored: &[u8] = if comp == 1 { &packed } else { &payload };
        // Every rank runs the same program, so blocks are near-clones of
        // the file's first block — compressing against it as a preset
        // dictionary folds that cross-rank redundancy while each block
        // stays decodable from (itself + the anchor).
        let dict_packed = self
            .anchor
            .as_deref()
            .map(|a| lz::compress_with_dict(a, &payload));
        if let Some(dp) = &dict_packed {
            if dp.len() < stored.len() {
                comp = 2;
                stored = dp;
            }
        }
        let mut head = Vec::with_capacity(16);
        wire::put_uvarint(&mut head, u64::from(rank));
        wire::put_uvarint(&mut head, ops.len() as u64);
        head.push(comp);
        wire::put_uvarint(&mut head, payload.len() as u64);
        wire::put_uvarint(&mut head, stored.len() as u64);
        self.out.write_all(&head)?;
        self.out.write_all(stored)?;
        let len = head.len() as u64 + stored.len() as u64;
        self.blocks.push(BlockMeta {
            rank,
            nops: ops.len() as u64,
            offset: self.pos,
            len,
        });
        self.pos += len;
        self.total_ops += ops.len() as u64;
        self.bytes_raw += payload.len() as u64;
        self.blocks_compressed += u64::from(comp != 0);
        if self.anchor.is_none() {
            self.anchor = Some(payload);
        }
        Ok(())
    }

    /// Appends the footer + trailer, flushes, and returns the sink along
    /// with the codec counters (writer staging fields left zero — the
    /// capture layer owns those).
    pub fn finish(mut self) -> std::io::Result<(W, CodecStats)> {
        self.ensure_header()?;
        let mut foot = Vec::with_capacity(64 + self.dict.len() * 16 + self.blocks.len() * 6);
        wire::put_uvarint(&mut foot, self.dict.len() as u64);
        for name in &self.dict {
            wire::put_uvarint(&mut foot, name.len() as u64);
            foot.extend_from_slice(name.as_bytes());
        }
        wire::put_uvarint(&mut foot, self.blocks.len() as u64);
        let mut prev = 0u64;
        for b in &self.blocks {
            wire::put_uvarint(&mut foot, u64::from(b.rank));
            wire::put_uvarint(&mut foot, b.nops);
            wire::put_uvarint(&mut foot, b.offset - prev);
            prev = b.offset;
        }
        wire::put_uvarint(&mut foot, self.total_ops);
        self.out.write_all(&foot)?;
        self.out.write_all(&(foot.len() as u64).to_le_bytes())?;
        self.out.write_all(TIT2_TRAILER)?;
        self.out.flush()?;
        self.pos += foot.len() as u64 + 16;
        let stats = CodecStats {
            ops: self.total_ops,
            blocks: self.blocks.len() as u64,
            blocks_compressed: self.blocks_compressed,
            dict_entries: self.dict.len() as u64,
            bytes_raw: self.bytes_raw,
            bytes_written: self.pos,
            writer_peak_staged_bytes: 0,
            writer_budget_bytes: 0,
        };
        Ok((self.out, stats))
    }
}

/// Encodes a whole in-memory trace to `TITRACE2` bytes, chunking each rank
/// into [`DEFAULT_BLOCK_OPS`]-sized blocks. Deterministic, and stable
/// under round-trips: `encode_v2(&decode_v2(&b)?) == b`.
pub fn encode_v2(trace: &TiTrace) -> Vec<u8> {
    encode_v2_blocks(trace, DEFAULT_BLOCK_OPS)
}

/// [`encode_v2`] with an explicit block size (tests exercise odd sizes).
pub fn encode_v2_blocks(trace: &TiTrace, block_ops: usize) -> Vec<u8> {
    let block_ops = block_ops.max(1);
    let mut w = TiV2Writer::new(Vec::new(), trace.num_ranks());
    for (r, ops) in trace.ranks.iter().enumerate() {
        for chunk in ops.chunks(block_ops) {
            w.write_block(r as u32, chunk)
                .expect("writing to a Vec cannot fail");
        }
    }
    let (bytes, _) = w.finish().expect("writing to a Vec cannot fail");
    bytes
}

/// Parsed footer + header of a v2 container.
struct Layout {
    nranks: usize,
    dict: Vec<String>,
    blocks: Vec<BlockMeta>,
    total_ops: u64,
}

fn parse_layout(header: &[u8], footer: &[u8], file_len: u64) -> Result<Layout, TiV2Error> {
    let err = |c: &'static str, m: String| TiV2Error::new(c, m);
    if header.len() < TIT2_MAGIC.len() || &header[..TIT2_MAGIC.len()] != TIT2_MAGIC {
        return Err(err("header", "bad magic (not a TITRACE2 file)".into()));
    }
    let mut hpos = TIT2_MAGIC.len();
    let nranks = wire::get_uvarint(header, &mut hpos)?;
    if nranks > MAX_RANKS {
        return Err(err("header", format!("implausible rank count {nranks}")));
    }
    let header_len = hpos as u64;

    let mut pos = 0usize;
    let ndict = wire::get_uvarint(footer, &mut pos)?;
    if ndict > MAX_DICT {
        return Err(err(
            "footer",
            format!("implausible dictionary size {ndict}"),
        ));
    }
    let mut dict = Vec::with_capacity(ndict as usize);
    for _ in 0..ndict {
        let len = wire::get_uvarint(footer, &mut pos)? as usize;
        if len as u64 > MAX_NAME || pos + len > footer.len() {
            return Err(err("footer", "dictionary entry overruns footer".into()));
        }
        let s = std::str::from_utf8(&footer[pos..pos + len])
            .map_err(|_| err("footer", "dictionary entry is not UTF-8".into()))?;
        dict.push(s.to_string());
        pos += len;
    }
    let nblocks = wire::get_uvarint(footer, &mut pos)?;
    if nblocks > MAX_BLOCKS {
        return Err(err("footer", format!("implausible block count {nblocks}")));
    }
    let footer_start = file_len - 16 - footer.len() as u64;
    let mut blocks = Vec::with_capacity(nblocks as usize);
    let mut prev_offset = 0u64;
    for i in 0..nblocks {
        let rank = wire::get_uvarint(footer, &mut pos)?;
        let nops = wire::get_uvarint(footer, &mut pos)?;
        let delta = wire::get_uvarint(footer, &mut pos)?;
        if rank >= nranks {
            return Err(err("footer", format!("block {i} rank {rank} out of range")));
        }
        if nops > MAX_BLOCK_OPS {
            return Err(err(
                "footer",
                format!("block {i} op count {nops} implausible"),
            ));
        }
        let offset = if i == 0 { delta } else { prev_offset + delta };
        if offset < header_len || offset >= footer_start {
            return Err(err(
                "footer",
                format!("block {i} offset {offset} out of range"),
            ));
        }
        if i > 0 {
            let prev: &mut BlockMeta = blocks.last_mut().expect("i > 0");
            prev.len = offset - prev.offset;
        }
        blocks.push(BlockMeta {
            rank: rank as u32,
            nops,
            offset,
            len: footer_start - offset, // fixed up by the next iteration
        });
        prev_offset = offset;
    }
    let total_ops = wire::get_uvarint(footer, &mut pos)?;
    if pos != footer.len() {
        return Err(err("footer", "trailing bytes in footer".into()));
    }
    if total_ops != blocks.iter().map(|b| b.nops).sum::<u64>() {
        return Err(err("footer", "total_ops does not match block index".into()));
    }
    Ok(Layout {
        nranks: nranks as usize,
        dict,
        blocks,
        total_ops,
    })
}

/// Parses one block (header + payload) out of its exact byte extent.
/// Validates a block's header against the footer index and returns its raw
/// (decompressed) payload. `anchor` is the raw payload of the file's first
/// block, required for dictionary-compressed blocks (`comp == 2`); the
/// first block itself never uses that mode, so `None` is correct for it.
fn block_raw(buf: &[u8], meta: &BlockMeta, anchor: Option<&[u8]>) -> Result<Vec<u8>, TiV2Error> {
    let err = |m: String| TiV2Error::new("block header", m);
    let mut pos = 0usize;
    let rank = wire::get_uvarint(buf, &mut pos)?;
    let nops = wire::get_uvarint(buf, &mut pos)?;
    if rank != u64::from(meta.rank) || nops != meta.nops {
        return Err(err(format!(
            "block header (rank {rank}, {nops} ops) disagrees with footer index (rank {}, {} ops)",
            meta.rank, meta.nops
        )));
    }
    let comp = *buf.get(pos).ok_or_else(|| err("truncated block".into()))?;
    pos += 1;
    let raw_len = wire::get_uvarint(buf, &mut pos)?;
    let stored_len = wire::get_uvarint(buf, &mut pos)? as usize;
    if raw_len > MAX_RAW_LEN {
        return Err(err(format!("implausible raw length {raw_len}")));
    }
    if pos + stored_len != buf.len() {
        return Err(err(format!(
            "stored length {stored_len} does not fill block extent {}",
            buf.len() - pos
        )));
    }
    let stored = &buf[pos..];
    match comp {
        0 => {
            if stored.len() as u64 != raw_len {
                return Err(err("raw block length mismatch".into()));
            }
            Ok(stored.to_vec())
        }
        1 => lz::decompress(stored, raw_len as usize),
        2 => {
            let dict = anchor
                .ok_or_else(|| err("dictionary-compressed block before the anchor block".into()))?;
            lz::decompress_with_dict(dict, stored, raw_len as usize)
        }
        other => Err(err(format!("unknown compression tag {other}"))),
    }
}

fn parse_block(
    buf: &[u8],
    meta: &BlockMeta,
    dict: &[String],
    anchor: Option<&[u8]>,
) -> Result<Vec<TiOp>, TiV2Error> {
    let payload = block_raw(buf, meta, anchor)?;
    decode_ops(&payload, meta.nops as usize, dict)
}

/// Splits a byte buffer into (header, footer, file_len) and parses the
/// layout. Shared by [`decode_v2`] and [`TiV2Reader::open`].
fn layout_of_bytes(bytes: &[u8]) -> Result<Layout, TiV2Error> {
    let err = |m: &str| TiV2Error::new("container", m.to_string());
    if bytes.len() < TIT2_MAGIC.len() + 16 {
        return Err(err("file too short for a TITRACE2 container"));
    }
    let n = bytes.len();
    if &bytes[n - 8..] != TIT2_TRAILER {
        return Err(err("bad trailer magic (truncated file?)"));
    }
    let footer_len = u64::from_le_bytes(bytes[n - 16..n - 8].try_into().expect("8 bytes"));
    let footer_start = (n as u64)
        .checked_sub(16 + footer_len)
        .filter(|&s| s >= TIT2_MAGIC.len() as u64)
        .ok_or_else(|| err("footer length exceeds file size"))?;
    let footer = &bytes[footer_start as usize..n - 16];
    parse_layout(bytes, footer, n as u64)
}

/// Decodes a complete `TITRACE2` byte buffer into an in-memory trace.
pub fn decode_v2(bytes: &[u8]) -> Result<TiTrace, TiV2Error> {
    let layout = layout_of_bytes(bytes)?;
    let mut ranks = vec![Vec::new(); layout.nranks];
    let mut anchor: Option<Vec<u8>> = None;
    for meta in &layout.blocks {
        let (start, end) = (meta.offset as usize, (meta.offset + meta.len) as usize);
        let raw = block_raw(&bytes[start..end], meta, anchor.as_deref())?;
        let ops = decode_ops(&raw, meta.nops as usize, &layout.dict)?;
        if anchor.is_none() {
            anchor = Some(raw);
        }
        ranks[meta.rank as usize].extend(ops);
    }
    Ok(TiTrace { ranks })
}

/// Shared residency accounting across everything a reader has decoded.
#[derive(Default)]
struct Resident {
    bytes: AtomicU64,
    peak: AtomicU64,
}

/// One decoded block, shared by every iterator currently inside it. Drop
/// of the last reference returns its bytes to the residency counter —
/// that counter (see [`ReaderStats::resident_peak_bytes`]) is how the
/// benches *prove* replay memory is bounded by block size, not trace
/// length.
pub struct DecodedBlock {
    /// The block's ops, in capture order.
    pub ops: Vec<TiOp>,
    cost: u64,
    resident: Arc<Resident>,
}

impl Drop for DecodedBlock {
    fn drop(&mut self) {
        self.resident.bytes.fetch_sub(self.cost, Ordering::Relaxed);
    }
}

/// Decode-side counters of a [`TiV2Reader`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReaderStats {
    /// Blocks decoded from disk.
    pub blocks_decoded: u64,
    /// Block requests served from the shared in-flight cache.
    pub cache_hits: u64,
    /// Estimated bytes of decoded blocks currently alive.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes` over the reader's lifetime.
    pub resident_peak_bytes: u64,
}

/// A seekable, shared, block-streaming `TITRACE2` reader.
///
/// `open` reads only the header and footer (dictionary + block index);
/// ops are decoded lazily, one block at a time, as [`TiOpIter`]s pull
/// them. Blocks alive in any iterator are shared through a `Weak` cache,
/// so N replay workers sweeping the same region of the trace decode each
/// block once — stream once, replay many — while blocks nobody holds are
/// freed immediately. Residency is therefore bounded by (blocks in
/// flight) × (block size), independent of trace length.
pub struct TiV2Reader {
    file: Mutex<std::fs::File>,
    nranks: usize,
    dict: Vec<String>,
    blocks: Vec<BlockMeta>,
    /// Per-rank block ids, in op order.
    rank_blocks: Vec<Vec<usize>>,
    total_ops: u64,
    cache: Vec<Mutex<Weak<DecodedBlock>>>,
    /// Raw payload of the first block (the shared LZ dictionary), cached.
    anchor: std::sync::OnceLock<Vec<u8>>,
    resident: Arc<Resident>,
    blocks_decoded: AtomicU64,
    cache_hits: AtomicU64,
}

impl std::fmt::Debug for TiV2Reader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TiV2Reader")
            .field("nranks", &self.nranks)
            .field("blocks", &self.blocks.len())
            .field("total_ops", &self.total_ops)
            .finish_non_exhaustive()
    }
}

impl TiV2Reader {
    /// Opens a `TITRACE2` file: validates the trailer, loads the footer
    /// (dictionary + block index), and leaves every block on disk.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<TiV2Reader, TraceIoError> {
        let mut file = std::fs::File::open(path)?;
        let file_len = file.seek(SeekFrom::End(0))?;
        let verr = |m: &str| TraceIoError::V2(TiV2Error::new("container", m.to_string()));
        if file_len < (TIT2_MAGIC.len() + 16) as u64 {
            return Err(verr("file too short for a TITRACE2 container"));
        }
        let mut tail = [0u8; 16];
        file.seek(SeekFrom::End(-16))?;
        file.read_exact(&mut tail)?;
        if &tail[8..] != TIT2_TRAILER {
            return Err(verr("bad trailer magic (truncated file?)"));
        }
        let footer_len = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
        if footer_len > file_len.saturating_sub(16 + TIT2_MAGIC.len() as u64) {
            return Err(verr("footer length exceeds file size"));
        }
        let footer_start = file_len - 16 - footer_len;
        let mut footer = vec![0u8; footer_len as usize];
        file.seek(SeekFrom::Start(footer_start))?;
        file.read_exact(&mut footer)?;
        let mut header = [0u8; 24];
        file.seek(SeekFrom::Start(0))?;
        let head_n = (file_len.min(24)) as usize;
        file.read_exact(&mut header[..head_n])?;
        let layout = parse_layout(&header[..head_n], &footer, file_len)?;

        let mut rank_blocks = vec![Vec::new(); layout.nranks];
        for (i, b) in layout.blocks.iter().enumerate() {
            rank_blocks[b.rank as usize].push(i);
        }
        let cache = (0..layout.blocks.len())
            .map(|_| Mutex::new(Weak::new()))
            .collect();
        Ok(TiV2Reader {
            file: Mutex::new(file),
            nranks: layout.nranks,
            dict: layout.dict,
            blocks: layout.blocks,
            rank_blocks,
            total_ops: layout.total_ops,
            cache,
            anchor: std::sync::OnceLock::new(),
            resident: Arc::new(Resident::default()),
            blocks_decoded: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        })
    }

    /// Raw payload of the file's first block — the shared LZ dictionary
    /// for `comp == 2` blocks. Read and decompressed once, then cached for
    /// the reader's lifetime (bounded by one block's payload).
    fn anchor_raw(&self) -> Result<&[u8], TraceIoError> {
        if let Some(a) = self.anchor.get() {
            return Ok(a);
        }
        let meta = self.blocks[0];
        let mut buf = vec![0u8; meta.len as usize];
        {
            let mut file = self.file.lock().expect("trace file poisoned");
            file.seek(SeekFrom::Start(meta.offset))?;
            file.read_exact(&mut buf)?;
        }
        let raw = block_raw(&buf, &meta, None)?;
        Ok(self.anchor.get_or_init(|| raw))
    }

    /// Number of ranks in the trace.
    pub fn num_ranks(&self) -> usize {
        self.nranks
    }

    /// Total ops across all ranks (from the footer, without decoding).
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Number of sealed blocks in the container.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Decode-side counters (cache behaviour, residency high-water mark).
    pub fn stats(&self) -> ReaderStats {
        ReaderStats {
            blocks_decoded: self.blocks_decoded.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            resident_bytes: self.resident.bytes.load(Ordering::Relaxed),
            resident_peak_bytes: self.resident.peak.load(Ordering::Relaxed),
        }
    }

    /// Fetches block `id`, decoding it from disk unless some iterator
    /// already holds it (shared `Weak` cache).
    fn block(&self, id: usize) -> Result<Arc<DecodedBlock>, TraceIoError> {
        let slot = self.cache[id].lock().expect("block cache poisoned");
        if let Some(blk) = slot.upgrade() {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(blk);
        }
        // Keep the slot locked while decoding so concurrent iterators
        // landing on the same block decode it exactly once.
        let meta = self.blocks[id];
        let mut buf = vec![0u8; meta.len as usize];
        {
            let mut file = self.file.lock().expect("trace file poisoned");
            file.seek(SeekFrom::Start(meta.offset))?;
            file.read_exact(&mut buf)?;
        }
        let anchor = if id == 0 {
            None
        } else {
            Some(self.anchor_raw()?)
        };
        let ops = parse_block(&buf, &meta, &self.dict, anchor)?;
        let cost: u64 = ops
            .iter()
            .map(|op| crate::capture::op_cost(op) as u64)
            .sum();
        let now = self.resident.bytes.fetch_add(cost, Ordering::Relaxed) + cost;
        self.resident.peak.fetch_max(now, Ordering::Relaxed);
        self.blocks_decoded.fetch_add(1, Ordering::Relaxed);
        let blk = Arc::new(DecodedBlock {
            ops,
            cost,
            resident: Arc::clone(&self.resident),
        });
        let mut slot = slot;
        *slot = Arc::downgrade(&blk);
        Ok(blk)
    }

    /// A streaming iterator over rank `rank`'s ops. Decodes block-by-block;
    /// holds at most one decoded block at a time.
    ///
    /// # Panics
    ///
    /// On i/o failure or block corruption discovered mid-stream (`open`
    /// validates the container shape, not every block). Use
    /// [`materialize`](Self::materialize) for a fully checked decode.
    pub fn rank_iter(self: &Arc<Self>, rank: usize) -> TiOpIter {
        assert!(rank < self.nranks, "rank {rank} out of range");
        TiOpIter {
            reader: Arc::clone(self),
            rank,
            next_block: 0,
            cur: None,
        }
    }

    /// Decodes the whole container into an in-memory [`TiTrace`] (checked:
    /// errors are returned, not panicked).
    pub fn materialize(&self) -> Result<TiTrace, TraceIoError> {
        let mut ranks = vec![Vec::new(); self.nranks];
        for (ops, blocks) in ranks.iter_mut().zip(&self.rank_blocks) {
            for &id in blocks {
                let blk = self.block(id)?;
                ops.extend(blk.ops.iter().cloned());
            }
        }
        Ok(TiTrace { ranks })
    }
}

/// Block-streaming op iterator of one rank (see [`TiV2Reader::rank_iter`]).
pub struct TiOpIter {
    reader: Arc<TiV2Reader>,
    rank: usize,
    next_block: usize,
    cur: Option<(Arc<DecodedBlock>, usize)>,
}

impl Iterator for TiOpIter {
    type Item = TiOp;

    fn next(&mut self) -> Option<TiOp> {
        loop {
            if let Some((blk, ix)) = &mut self.cur {
                if *ix < blk.ops.len() {
                    let op = blk.ops[*ix].clone();
                    *ix += 1;
                    return Some(op);
                }
                self.cur = None; // drop the block before fetching the next
            }
            let ids = &self.reader.rank_blocks[self.rank];
            if self.next_block >= ids.len() {
                return None;
            }
            let id = ids[self.next_block];
            self.next_block += 1;
            let blk = self
                .reader
                .block(id)
                .unwrap_or_else(|e| panic!("TITRACE2 stream failed at block {id}: {e}"));
            self.cur = Some((blk, 0));
        }
    }
}
