//! Correctness of every collective against sequential references, on both
//! backends and for power-of-two and odd communicator sizes.

use std::sync::Arc;

use smpi::{op, MpiProfile, World};
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use surf_sim::TransferModel;

fn worlds(n: usize) -> [World; 2] {
    let rp = Arc::new(RoutedPlatform::new(flat_cluster(
        "t",
        n,
        &ClusterConfig::default(),
    )));
    [
        World::smpi(Arc::clone(&rp), TransferModel::ideal()),
        World::testbed(rp, MpiProfile::mpich2_like()),
    ]
}

const SIZES: [usize; 4] = [1, 2, 5, 8];

#[test]
fn barrier_completes_everywhere() {
    for p in SIZES {
        for world in worlds(p) {
            let report = world.run(p, |ctx| {
                ctx.barrier(&ctx.world());
                ctx.wtime()
            });
            assert_eq!(report.results.len(), p);
        }
    }
}

#[test]
fn barrier_actually_synchronizes() {
    // Rank 0 sleeps; everyone's post-barrier time must be >= the sleep.
    for world in worlds(4) {
        let report = world.run(4, |ctx| {
            if ctx.rank() == 0 {
                ctx.sleep(1.0);
            }
            ctx.barrier(&ctx.world());
            ctx.wtime()
        });
        for &t in &report.results {
            assert!(t >= 1.0, "barrier leaked a rank early ({t})");
        }
    }
}

#[test]
fn bcast_from_every_root() {
    for p in [2usize, 5, 8] {
        for world in worlds(p) {
            for root in [0, p - 1] {
                let report = world.run(p, move |ctx| {
                    let comm = ctx.world();
                    let mut buf = vec![0.0f64; 64];
                    if ctx.rank() == root {
                        buf.iter_mut().enumerate().for_each(|(i, x)| *x = i as f64);
                    }
                    ctx.bcast(&mut buf, root, &comm);
                    buf[63]
                });
                assert!(report.results.iter().all(|&v| v == 63.0));
            }
        }
    }
}

#[test]
fn scatter_distributes_chunks() {
    for p in SIZES {
        for world in worlds(p) {
            for root in [0, p / 2] {
                let report = world.run(p, move |ctx| {
                    let comm = ctx.world();
                    let chunk = 16;
                    let data: Option<Vec<f64>> =
                        (ctx.rank() == root).then(|| (0..p * chunk).map(|i| i as f64).collect());
                    let mine = ctx.scatter(data.as_deref(), chunk, root, &comm);
                    assert_eq!(mine.len(), chunk);
                    mine[0]
                });
                for (r, &v) in report.results.iter().enumerate() {
                    assert_eq!(v, (r * 16) as f64, "rank {r} got wrong chunk");
                }
            }
        }
    }
}

#[test]
fn gather_collects_in_rank_order() {
    for p in SIZES {
        for world in worlds(p) {
            for root in [0, p - 1] {
                let report = world.run(p, move |ctx| {
                    let comm = ctx.world();
                    let mine = vec![ctx.rank() as u32; 4];
                    ctx.gather(&mine, root, &comm)
                });
                for (r, res) in report.results.iter().enumerate() {
                    if r == root {
                        let all = res.as_ref().unwrap();
                        assert_eq!(all.len(), p * 4);
                        for (i, &v) in all.iter().enumerate() {
                            assert_eq!(v as usize, i / 4);
                        }
                    } else {
                        assert!(res.is_none());
                    }
                }
            }
        }
    }
}

#[test]
fn scatterv_gatherv_roundtrip() {
    for p in [2usize, 5] {
        for world in worlds(p) {
            let report = world.run(p, move |ctx| {
                let comm = ctx.world();
                let r = ctx.rank();
                let counts: Vec<usize> = (0..p).map(|i| i + 1).collect();
                let total: usize = counts.iter().sum();
                let data: Option<Vec<i64>> = (r == 0).then(|| (0..total as i64).collect());
                let mine = ctx.scatterv(
                    data.as_deref(),
                    (r == 0).then_some(&counts[..]),
                    counts[r],
                    0,
                    &comm,
                );
                assert_eq!(mine.len(), r + 1);
                // Send it straight back.
                let back = ctx.gatherv(&mine, (r == 0).then_some(&counts[..]), 0, &comm);
                (mine, back)
            });
            let (_, back) = &report.results[0];
            let total: i64 = (0..p as i64).map(|i| i + 1).sum();
            assert_eq!(back.as_ref().unwrap().len(), total as usize);
            assert_eq!(
                back.as_ref().unwrap(),
                &(0..total).collect::<Vec<i64>>(),
                "gatherv(scatterv(x)) != x"
            );
        }
    }
}

#[test]
fn allgather_all_sizes() {
    for p in SIZES {
        for world in worlds(p) {
            let report = world.run(p, |ctx| {
                let comm = ctx.world();
                let mine = vec![ctx.rank() as u16; 3];
                ctx.allgather(&mine, &comm)
            });
            for res in &report.results {
                assert_eq!(res.len(), p * 3);
                for (i, &v) in res.iter().enumerate() {
                    assert_eq!(v as usize, i / 3);
                }
            }
        }
    }
}

#[test]
fn allgather_variants_agree() {
    let p = 8;
    for world in worlds(p) {
        let report = world.run(p, |ctx| {
            let comm = ctx.world();
            let mine = vec![ctx.rank() as u32 * 7];
            let rdb = ctx.allgather_rdb(&mine, &comm);
            let ring = ctx.allgather_ring(&mine, &comm);
            (rdb, ring)
        });
        for (rdb, ring) in &report.results {
            assert_eq!(rdb, ring);
        }
    }
}

#[test]
fn allgatherv_uneven() {
    for p in [3usize, 6] {
        for world in worlds(p) {
            let report = world.run(p, move |ctx| {
                let comm = ctx.world();
                let r = ctx.rank();
                let counts: Vec<usize> = (0..p).map(|i| 2 * i + 1).collect();
                let mine = vec![r as i32; counts[r]];
                ctx.allgatherv(&mine, &counts, &comm)
            });
            let expect: Vec<i32> = (0..p as i32)
                .flat_map(|i| std::iter::repeat_n(i, 2 * i as usize + 1))
                .collect();
            for res in &report.results {
                assert_eq!(res, &expect);
            }
        }
    }
}

#[test]
fn reduce_sum_and_max() {
    for p in SIZES {
        for world in worlds(p) {
            let report = world.run(p, move |ctx| {
                let comm = ctx.world();
                let r = ctx.rank() as i64;
                let sums = ctx.reduce(&[r, 2 * r], &op::sum::<i64>(), 0, &comm);
                let maxs = ctx.reduce(&[r], &op::max::<i64>(), 0, &comm);
                (sums, maxs)
            });
            let expect_sum: i64 = (0..p as i64).sum();
            let (sums, maxs) = &report.results[0];
            assert_eq!(sums.as_ref().unwrap(), &[expect_sum, 2 * expect_sum]);
            assert_eq!(maxs.as_ref().unwrap(), &[p as i64 - 1]);
            for r in 1..p {
                assert!(report.results[r].0.is_none());
            }
        }
    }
}

#[test]
fn reduce_non_commutative_preserves_rank_order() {
    // Matrix multiply of 2x2 matrices is non-commutative; MPI requires
    // evaluation in rank order. Encode a 2x2 matrix as [a, b, c, d] and
    // fold with matrix multiplication via a user op on a flattened pair —
    // here we cheat with "string-like" composition on integers:
    // f(a, b) = a * 10 + b is left-associative-sensitive.
    for p in [2usize, 5, 8] {
        for world in worlds(p) {
            let concat = smpi::Op::<i64>::user("CONCAT", |a, b| a * 10 + b, false);
            let report = world.run(p, move |ctx| {
                let comm = ctx.world();
                let r = ctx.rank() as i64 + 1;
                ctx.reduce(&[r], &concat, 0, &comm)
            });
            // 1 ⊕ 2 ⊕ … ⊕ p with f(a,b) = 10a + b → the decimal digits in
            // rank order.
            let expect: i64 =
                (1..=p as i64).fold(0, |acc, d| if acc == 0 { d } else { acc * 10 + d });
            assert_eq!(report.results[0].as_ref().unwrap(), &[expect]);
        }
    }
}

#[test]
fn allreduce_matches_reduce_plus_bcast() {
    for p in SIZES {
        for world in worlds(p) {
            let report = world.run(p, move |ctx| {
                let comm = ctx.world();
                let r = ctx.rank() as f64;
                ctx.allreduce(&[r, r * r], &op::sum::<f64>(), &comm)
            });
            let s: f64 = (0..p).map(|i| i as f64).sum();
            let s2: f64 = (0..p).map(|i| (i * i) as f64).sum();
            for res in &report.results {
                assert_eq!(res, &[s, s2]);
            }
        }
    }
}

#[test]
fn scan_computes_inclusive_prefixes() {
    for p in SIZES {
        for world in worlds(p) {
            let report = world.run(p, move |ctx| {
                let comm = ctx.world();
                let r = ctx.rank() as i64;
                ctx.scan(&[r + 1], &op::sum::<i64>(), &comm)
            });
            for (r, res) in report.results.iter().enumerate() {
                let expect: i64 = (1..=r as i64 + 1).sum();
                assert_eq!(res, &[expect], "rank {r}");
            }
        }
    }
}

#[test]
fn scan_non_commutative_order() {
    // keep_left / keep_right are associative but not commutative, so they
    // detect any operand-order mistake: an inclusive scan with keep_left
    // yields x₀ everywhere, with keep_right it yields xᵣ.
    for p in [4usize, 7] {
        for world in worlds(p) {
            let keep_left = smpi::Op::<i64>::user("KEEP_LEFT", |a, _| a, false);
            let keep_right = smpi::Op::<i64>::user("KEEP_RIGHT", |_, b| b, false);
            let report = world.run(p, move |ctx| {
                let comm = ctx.world();
                let x = ctx.rank() as i64 + 100;
                let l = ctx.scan(&[x], &keep_left, &comm);
                let r = ctx.scan(&[x], &keep_right, &comm);
                (l[0], r[0])
            });
            for (r, &(l, rr)) in report.results.iter().enumerate() {
                assert_eq!(l, 100, "rank {r}: keep_left scan must give x0");
                assert_eq!(
                    rr,
                    r as i64 + 100,
                    "rank {r}: keep_right scan must give x_r"
                );
            }
        }
    }
}

#[test]
fn reduce_scatter_segments() {
    for p in [2usize, 4, 5] {
        for world in worlds(p) {
            let report = world.run(p, move |ctx| {
                let comm = ctx.world();
                let counts: Vec<usize> = (0..p).map(|i| i + 1).collect();
                let total: usize = counts.iter().sum();
                let r = ctx.rank() as i64;
                let data: Vec<i64> = (0..total as i64).map(|i| i + r).collect();
                ctx.reduce_scatter(&data, &counts, &op::sum::<i64>(), &comm)
            });
            // Element j of the reduced vector is p*j + sum(0..p).
            let ranks_sum: i64 = (0..p as i64).sum();
            let mut offset = 0usize;
            for (r, res) in report.results.iter().enumerate() {
                assert_eq!(res.len(), r + 1);
                for (k, &v) in res.iter().enumerate() {
                    let j = (offset + k) as i64;
                    assert_eq!(v, p as i64 * j + ranks_sum);
                }
                offset += r + 1;
            }
        }
    }
}

#[test]
fn alltoall_transposes() {
    for p in SIZES {
        for world in worlds(p) {
            let report = world.run(p, move |ctx| {
                let comm = ctx.world();
                let r = ctx.rank();
                // Block for rank j = [r * 100 + j].
                let send: Vec<i32> = (0..p).map(|j| (r * 100 + j) as i32).collect();
                ctx.alltoall(&send, &comm)
            });
            for (r, res) in report.results.iter().enumerate() {
                let expect: Vec<i32> = (0..p).map(|j| (j * 100 + r) as i32).collect();
                assert_eq!(res, &expect, "rank {r}");
            }
        }
    }
}

#[test]
fn alltoallv_uneven() {
    for p in [2usize, 4] {
        for world in worlds(p) {
            let report = world.run(p, move |ctx| {
                let comm = ctx.world();
                let r = ctx.rank();
                // Rank r sends j+1 copies of (r*10 + j) to rank j.
                let send_counts: Vec<usize> = (0..p).map(|j| j + 1).collect();
                let recv_counts: Vec<usize> = vec![r + 1; p];
                let send: Vec<i32> = (0..p)
                    .flat_map(|j| std::iter::repeat_n((r * 10 + j) as i32, j + 1))
                    .collect();
                ctx.alltoallv(&send, &send_counts, &recv_counts, &comm)
            });
            for (r, res) in report.results.iter().enumerate() {
                let expect: Vec<i32> = (0..p)
                    .flat_map(|j| std::iter::repeat_n((j * 10 + r) as i32, r + 1))
                    .collect();
                assert_eq!(res, &expect, "rank {r}");
            }
        }
    }
}

#[test]
fn collectives_on_sub_communicators() {
    for world in worlds(6) {
        let report = world.run(6, |ctx| {
            let world_comm = ctx.world();
            let evens = world_comm.group().incl(&[0, 2, 4]);
            let odds = world_comm.group().excl(&[0, 2, 4]);
            let my_group = if ctx.rank() % 2 == 0 { &evens } else { &odds };
            let sub = ctx.comm_create(&world_comm, my_group);
            let r = ctx.rank() as i32;
            let sum = ctx.allreduce(&[r], &op::sum::<i32>(), &sub);
            sum[0]
        });
        assert_eq!(report.results, vec![6, 9, 6, 9, 6, 9]);
    }
}

#[test]
fn variant_algorithms_produce_identical_data() {
    for world in worlds(8) {
        let report = world.run(8, |ctx| {
            let comm = ctx.world();
            let chunk = 8;
            let data: Option<Vec<f32>> =
                (ctx.rank() == 0).then(|| (0..8 * chunk).map(|i| i as f32).collect());
            let binomial = ctx.scatter(data.as_deref(), chunk, 0, &comm);
            let linear = ctx.scatter_linear(data.as_deref(), chunk, 0, &comm);
            let chain = ctx.scatter_chain(data.as_deref(), chunk, 0, &comm);
            assert_eq!(binomial, linear);
            assert_eq!(binomial, chain);
            let mut b1 = vec![0u8; 32];
            let mut b2 = vec![0u8; 32];
            if ctx.rank() == 3 {
                b1 = (0..32).map(|i| i as u8).collect();
                b2 = b1.clone();
            }
            ctx.bcast(&mut b1, 3, &comm);
            ctx.bcast_linear(&mut b2, 3, &comm);
            assert_eq!(b1, b2);
            binomial[0]
        });
        assert_eq!(report.results.len(), 8);
    }
}
