//! Determinism at scale: two identical 4096-rank runs must produce
//! byte-identical reports.
//!
//! The paper's methodology leans on bit-for-bit reproducibility — the
//! maestro resumes runnable ranks strictly in actor-id order, so the
//! sequence of simcalls (and therefore every simulated timestamp) is a pure
//! function of the program. This test locks that property in for the
//! scheduler fast path: the notify_one handoff, the dense runnable
//! worklist, the local simcall tier (`wtime` answered on the actor thread)
//! and the O(completions) waiter queue all must not introduce any
//! dependence on OS scheduling.
//!
//! The workload is a deterministic EP-style mix: explicit compute bursts
//! (no wall-clock sampling — that would be genuinely nondeterministic),
//! folded allocations, a ring exchange and an allreduce, with `wtime`
//! sprinkled in so the local tier is on the measured path.

use std::sync::Arc;

use smpi::{MpiProfile, World};
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use surf_sim::TransferModel;

const RANKS: usize = 4096;

/// Serializes a run into an exact byte string: every f64 as raw bits.
fn run_fingerprint() -> String {
    // 61 hosts: odd (so no power-of-two allreduce partner distance is a
    // multiple of it) and not a divisor of 4095 (so the ring wraparound
    // never pairs two ranks of the same host — the fabric models no
    // intra-host wire).
    let rp = Arc::new(RoutedPlatform::new(flat_cluster(
        "det",
        61,
        &ClusterConfig::default(),
    )));
    let world = World::new(
        rp,
        smpi::Backend::Surf {
            model: TransferModel::default_affine(),
            engine: Default::default(),
        },
        MpiProfile::smpi(),
    );
    let report = world.run(RANKS, |ctx| {
        let rank = ctx.rank();
        let n = ctx.size();
        let comm = ctx.world();
        let field = ctx.shared_malloc::<f64>("det:field", 1 << 12);
        // Deterministic compute burst, different per rank class.
        ctx.compute(1.0e6 * (1 + rank % 7) as f64);
        let t0 = ctx.wtime();
        field.lock()[rank % (1 << 12)] = t0;
        // Ring exchange: send right, receive from left.
        let right = (rank + 1) % n;
        let sreq = ctx.isend(&[rank as f64, t0], right, 5, &comm);
        let mut buf = [0.0f64; 2];
        ctx.recv(&mut buf, ((rank + n - 1) % n) as i32, 5, &comm);
        ctx.wait_send(sreq);
        let t1 = ctx.wtime();
        let sum = ctx.allreduce(&[t1 - t0, buf[1]], &smpi::op::sum::<f64>(), &comm);
        (t1.to_bits(), sum[0].to_bits(), sum[1].to_bits())
    });

    let mut out = String::new();
    out.push_str(&format!("sim_time={:016x}\n", report.sim_time.to_bits()));
    out.push_str(&format!(
        "peak={} logical={}\n",
        report.memory.peak_bytes, report.memory.logical_peak_bytes
    ));
    for (rank, t) in report.finish_times.iter().enumerate() {
        out.push_str(&format!("finish[{rank}]={:016x}\n", t.to_bits()));
    }
    for (rank, (a, b, c)) in report.results.iter().enumerate() {
        out.push_str(&format!("result[{rank}]={a:016x},{b:016x},{c:016x}\n"));
    }
    out
}

#[test]
fn two_4096_rank_runs_are_byte_identical() {
    let first = run_fingerprint();
    let second = run_fingerprint();
    assert!(first.len() > RANKS * 2, "fingerprint covers every rank");
    assert_eq!(
        first, second,
        "4096-rank runs diverged: scheduling is leaking into results"
    );
}
