//! CPU sampling (§3.1) and RAM folding (§3.2) behaviour, end-to-end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use smpi::World;
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use surf_sim::TransferModel;

fn world(n: usize) -> World {
    let rp = Arc::new(RoutedPlatform::new(flat_cluster(
        "t",
        n,
        &ClusterConfig::default(),
    )));
    World::smpi(rp, TransferModel::ideal())
}

#[test]
fn sample_local_executes_n_times_per_rank() {
    let executions = Arc::new(AtomicUsize::new(0));
    let ex = Arc::clone(&executions);
    world(4).run(4, move |ctx| {
        for _ in 0..10 {
            ctx.sample_local("site", 3, || {
                ex.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    // 4 ranks x first 3 iterations each.
    assert_eq!(executions.load(Ordering::Relaxed), 12);
}

#[test]
fn sample_global_executes_n_times_total() {
    let executions = Arc::new(AtomicUsize::new(0));
    let ex = Arc::clone(&executions);
    world(8).run(8, move |ctx| {
        for _ in 0..5 {
            ctx.sample_global("gsite", 3, || {
                ex.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(executions.load(Ordering::Relaxed), 3);
}

#[test]
fn sample_replay_advances_simulated_time() {
    let report = world(1).run(1, |ctx| {
        for _ in 0..8 {
            ctx.sample_local("work", 2, || {
                // A small but measurable burst.
                let mut x = 0u64;
                for i in 0..200_000u64 {
                    x = x.wrapping_add(i * i);
                }
                std::hint::black_box(x);
            });
        }
        ctx.wtime()
    });
    // 2 measured + 6 replayed bursts must all appear on the clock; replay
    // charges the mean, so total ~ 8 x mean > 0.
    assert!(report.results[0] > 0.0);
    assert!(report.sim_time > 0.0);
}

#[test]
fn sample_delay_burns_flops_without_executing() {
    let report = world(2).run(2, |ctx| {
        ctx.sample_delay(1e9); // at 1 Gf/s hosts: exactly 1 simulated second
        ctx.wtime()
    });
    for &t in &report.results {
        assert!(
            (t - 1.0).abs() < 1e-9,
            "expected 1 s of simulated compute, got {t}"
        );
    }
}

#[test]
fn cpu_factor_scales_measured_bursts() {
    // With a huge cpu_factor, even a tiny measured burst becomes large
    // simulated time; with factor 1 it stays tiny.
    let slow = world(1).cpu_factor(1e6).run(1, |ctx| {
        ctx.sample_local("burst", 1, || {
            std::hint::black_box((0..10_000u64).sum::<u64>());
        });
        ctx.wtime()
    });
    let fast = world(1).cpu_factor(1.0).run(1, |ctx| {
        ctx.sample_local("burst", 1, || {
            std::hint::black_box((0..10_000u64).sum::<u64>());
        });
        ctx.wtime()
    });
    assert!(slow.results[0] > fast.results[0] * 100.0);
}

#[test]
fn folding_shares_buffers_across_ranks() {
    let report = world(8).ram_folding(true).run(8, |ctx| {
        let buf = ctx.shared_malloc::<f64>("data", 1000);
        if ctx.rank() == 0 {
            buf.lock()[0] = 42.0;
        }
        ctx.barrier(&ctx.world());
        let v = buf.lock()[0];
        v
    });
    // All ranks observe rank 0's write: one shared buffer.
    assert!(report.results.iter().all(|&v| v == 42.0));
    // Actual footprint: one 8 KB buffer. Logical: eight.
    assert_eq!(report.memory.peak_bytes, 8000);
    assert_eq!(report.memory.logical_peak_bytes, 64000);
    assert!((report.memory.folding_factor() - 8.0).abs() < 1e-12);
}

#[test]
fn no_folding_gives_private_buffers() {
    let report = world(8).ram_folding(false).run(8, |ctx| {
        let buf = ctx.shared_malloc::<f64>("data", 1000);
        if ctx.rank() == 0 {
            buf.lock()[0] = 42.0;
        }
        ctx.barrier(&ctx.world());
        let v = buf.lock()[0];
        v
    });
    // Only rank 0 sees its write.
    assert_eq!(report.results[0], 42.0);
    assert!(report.results[1..].iter().all(|&v| v == 0.0));
    assert_eq!(report.memory.peak_bytes, 64000);
    assert_eq!(report.memory.logical_peak_bytes, 64000);
}

#[test]
fn tracked_vec_counts_per_rank_both_ways() {
    for folding in [true, false] {
        let report = world(4).ram_folding(folding).run(4, |ctx| {
            let _buf = ctx.tracked_vec::<u8>(500);
            ctx.barrier(&ctx.world());
        });
        assert_eq!(report.memory.peak_bytes, 2000);
        assert_eq!(report.memory.logical_peak_bytes, 2000);
    }
}

#[test]
fn memory_is_released_on_drop() {
    let report = world(2).run(2, |ctx| {
        {
            let _a = ctx.tracked_vec::<u8>(1000);
            ctx.barrier(&ctx.world());
        } // dropped here
        ctx.barrier(&ctx.world());
        let _b = ctx.tracked_vec::<u8>(500);
        ctx.barrier(&ctx.world());
    });
    // Peak was during the first allocation wave (2 x 1000), not cumulative.
    assert_eq!(report.memory.peak_bytes, 2000);
}

#[test]
fn wall_clock_is_reported() {
    let report = world(2).run(2, |ctx| {
        ctx.barrier(&ctx.world());
    });
    assert!(report.wall.as_nanos() > 0);
    assert_eq!(report.finish_times.len(), 2);
}
