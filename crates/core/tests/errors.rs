//! No-progress conditions surface as typed [`SimError`]s through
//! `World::try_run` instead of panics from deep inside the kernel.

use std::sync::Arc;

use smpi::{Backend, SimError, World};
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use surf_sim::{EngineConfig, TransferModel};

fn platform(n: usize) -> Arc<RoutedPlatform> {
    Arc::new(RoutedPlatform::new(flat_cluster(
        "t",
        n,
        &ClusterConfig::default(),
    )))
}

#[test]
fn kernel_stall_propagates_as_typed_error() {
    // A zero TCP window with non-zero route latency bounds every bandwidth
    // flow at 0 bytes/s: the transfer enters the bandwidth phase and then
    // can never finish.
    let world = World::new(
        platform(2),
        Backend::Surf {
            model: TransferModel::ideal(),
            engine: EngineConfig {
                contention: true,
                tcp_window: Some(0.0),
            },
        },
        smpi::MpiProfile::smpi(),
    );
    let err = world
        .try_run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                ctx.send(&[0u8; 4096], 1, 0, &comm);
            } else {
                let _ = ctx.recv_vec::<u8>(0, 0, 4096, &comm);
            }
        })
        .expect_err("a rate-0 flow must stall the kernel");
    match &err {
        SimError::Stall(stall) => {
            assert!(!stall.stuck.is_empty());
            assert_eq!(stall.stuck[0].kind, "transfer");
            assert_eq!(stall.stuck[0].rate, 0.0);
        }
        other => panic!("expected a stall, got: {other}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("stalled"), "unhelpful message: {msg}");
}

#[test]
fn unmatched_receive_is_a_deadlock_error() {
    let world = World::smpi(platform(2), TransferModel::ideal());
    let err = world
        .try_run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 1 {
                // Nobody ever sends: this blocks forever.
                let _ = ctx.recv_vec::<u8>(0, 0, 16, &comm);
            }
        })
        .expect_err("an unmatched recv must deadlock");
    match err {
        SimError::Deadlock { blocked } => assert_eq!(blocked, 1),
        other => panic!("expected a deadlock, got: {other}"),
    }
}
