//! No-progress conditions surface as typed [`SimError`]s through
//! `World::try_run` instead of panics from deep inside the kernel, and
//! carry a flight-recorder [`smpi::Postmortem`] naming each blocked rank's
//! pending requests and recent ops.

use std::sync::Arc;

use smpi::{Backend, SimError, World, FLIGHT_DEPTH};
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use surf_sim::{EngineConfig, TransferModel};

fn platform(n: usize) -> Arc<RoutedPlatform> {
    Arc::new(RoutedPlatform::new(flat_cluster(
        "t",
        n,
        &ClusterConfig::default(),
    )))
}

#[test]
fn kernel_stall_propagates_as_typed_error() {
    // A zero TCP window with non-zero route latency bounds every bandwidth
    // flow at 0 bytes/s: the transfer enters the bandwidth phase and then
    // can never finish.
    let world = World::new(
        platform(2),
        Backend::Surf {
            model: TransferModel::ideal(),
            engine: EngineConfig {
                contention: true,
                tcp_window: Some(0.0),
                class_folding: true,
            },
        },
        smpi::MpiProfile::smpi(),
    );
    let err = world
        .try_run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                ctx.send(&[0u8; 4096], 1, 0, &comm);
            } else {
                let _ = ctx.recv_vec::<u8>(0, 0, 4096, &comm);
            }
        })
        .expect_err("a rate-0 flow must stall the kernel");
    match &err {
        SimError::Stall { error, postmortem } => {
            assert!(!error.stuck.is_empty());
            assert_eq!(error.stuck[0].kind, "transfer");
            assert_eq!(error.stuck[0].rate, 0.0);
            // The maestro attaches MPI-level context: the eager send
            // detached at injection, so rank 1 alone is blocked, on a
            // matched receive whose message is stuck on the wire.
            assert_eq!(postmortem.ranks.len(), 1, "got:\n{}", postmortem.render());
            assert_eq!(postmortem.ranks[0].rank, 1);
            let spec = &postmortem.ranks[0].pending[0].spec;
            assert!(spec.contains("on the wire"), "spec: {spec}");
        }
        other => panic!("expected a stall, got: {other}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("stalled"), "unhelpful message: {msg}");
}

#[test]
fn unmatched_receive_is_a_deadlock_error() {
    let world = World::smpi(platform(2), TransferModel::ideal());
    let err = world
        .try_run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 1 {
                // Nobody ever sends: this blocks forever.
                let _ = ctx.recv_vec::<u8>(0, 0, 16, &comm);
            }
        })
        .expect_err("an unmatched recv must deadlock");
    match &err {
        SimError::Deadlock {
            blocked,
            postmortem,
        } => {
            assert_eq!(blocked, &[1]);
            assert_eq!(postmortem.ranks.len(), 1);
            assert_eq!(postmortem.ranks[0].rank, 1);
            let spec = &postmortem.ranks[0].pending[0].spec;
            assert!(spec.contains("recv src 0"), "spec: {spec}");
            assert!(spec.contains("unmatched"), "spec: {spec}");
            // Rank 0 never sent anything, so there is no counterpart.
            assert!(postmortem.ranks[0].pending[0].counterpart.is_none());
        }
        other => panic!("expected a deadlock, got: {other}"),
    }
}

/// The crafted tag-mismatch scenario: after four warm-up exchange rounds
/// (so both flight rings hold at least [`FLIGHT_DEPTH`]/2 real entries),
/// rank 0 sends 128 KiB with tag 7 while rank 1 receives tag 9. The send
/// is rendezvous so both sides block, and the postmortem must name both
/// pending specs, point each at its nearest counterpart, and replay each
/// rank's recent ops.
fn tag_mismatch_error() -> SimError {
    let world = World::smpi(platform(2), TransferModel::ideal());
    world
        .try_run(2, |ctx| {
            let comm = ctx.world();
            let peer = 1 - ctx.rank();
            // Warm-up: four eager ping-pong rounds in each direction.
            for round in 0..4 {
                let payload = [round as u8; 64];
                if ctx.rank() == 0 {
                    ctx.send(&payload, peer, 1, &comm);
                    let _ = ctx.recv_vec::<u8>(peer as i32, 2, 64, &comm);
                } else {
                    let _ = ctx.recv_vec::<u8>(peer as i32, 1, 64, &comm);
                    ctx.send(&payload, peer, 2, &comm);
                }
            }
            // The bug under test: tags disagree, both ranks block forever.
            if ctx.rank() == 0 {
                ctx.send(&vec![0u8; 128 * 1024], 1, 7, &comm);
            } else {
                let _ = ctx.recv_vec::<u8>(0, 9, 128 * 1024, &comm);
            }
        })
        .expect_err("mismatched tags must deadlock")
}

#[test]
fn tag_mismatch_postmortem_names_both_sides() {
    let err = tag_mismatch_error();
    let SimError::Deadlock {
        blocked,
        postmortem,
    } = &err
    else {
        panic!("expected a deadlock, got: {err}");
    };
    assert_eq!(blocked, &[0, 1]);
    assert_eq!(postmortem.ranks.len(), 2);

    let r0 = &postmortem.ranks[0];
    assert_eq!(r0.rank, 0);
    assert_eq!(r0.wait_mode, Some("all"));
    assert_eq!(r0.pending.len(), 1);
    let spec = &r0.pending[0].spec;
    assert!(spec.contains("send dst 1"), "spec: {spec}");
    assert!(spec.contains("tag 7"), "spec: {spec}");
    assert!(spec.contains("131072 B"), "spec: {spec}");
    assert!(spec.contains("unmatched"), "spec: {spec}");
    let cp = r0.pending[0].counterpart.as_deref().unwrap();
    assert!(cp.contains("tag mismatch"), "counterpart: {cp}");
    assert!(cp.contains("tag 9"), "counterpart: {cp}");

    let r1 = &postmortem.ranks[1];
    assert_eq!(r1.rank, 1);
    let spec = &r1.pending[0].spec;
    assert!(spec.contains("recv src 0"), "spec: {spec}");
    assert!(spec.contains("tag 9"), "spec: {spec}");
    let cp = r1.pending[0].counterpart.as_deref().unwrap();
    assert!(cp.contains("tag mismatch"), "counterpart: {cp}");
    assert!(cp.contains("tag 7"), "counterpart: {cp}");

    // The flight recorder kept a meaningful history for every blocked
    // rank: at least 8 recent ops, ending in the fatal post + wait.
    for r in &postmortem.ranks {
        assert!(
            r.last_ops.len() >= 8,
            "rank {} history too short: {:?}",
            r.rank,
            r.last_ops
        );
        assert!(r.last_ops.len() <= FLIGHT_DEPTH);
        let tail = r.last_ops.last().unwrap();
        assert!(tail.starts_with("wait "), "tail: {tail}");
    }

    // The rendered error is self-diagnosing.
    let msg = err.to_string();
    assert!(msg.contains("postmortem: 2 blocked rank(s)"), "{msg}");
    assert!(msg.contains("nearest match:"), "{msg}");
}

/// Protocol violations (a completion naming a request or message the
/// runtime no longer knows — the signature of a malformed or truncated
/// `.tit` replay trace) are typed, self-describing errors rather than
/// panics that poison the maestro thread.
#[test]
fn protocol_error_is_typed_and_diagnosable() {
    let err = SimError::Protocol {
        detail: "fabric completion for unknown token 42".into(),
        postmortem: Box::default(),
    };
    let msg = err.to_string();
    assert!(msg.contains("protocol error"), "{msg}");
    assert!(msg.contains("unknown token 42"), "{msg}");
    assert!(msg.contains("truncated trace"), "{msg}");
    // The shared postmortem accessor covers the new variant.
    assert!(err.postmortem().ranks.is_empty());
    assert!(std::error::Error::source(&err).is_none());
}

/// The postmortem JSON is deterministic; gate it against a committed
/// golden. Regenerate with `BLESS=1 cargo test -p smpi --test errors`.
#[test]
fn tag_mismatch_postmortem_matches_golden_json() {
    let err = tag_mismatch_error();
    let json = err.postmortem().to_json();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/postmortem.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden_path, &json).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file (run with BLESS=1)");
    assert_eq!(json, golden, "postmortem JSON drifted from the golden file");
}
