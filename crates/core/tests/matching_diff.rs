//! Differential regression test for the per-(src, tag) FIFO matching
//! rewrite (`smpi::matching`).
//!
//! The previous engine kept one queue per (cid, dst) and linearly scanned
//! it for the earliest compatible entry. That scan *is* the MPI matching
//! rule, so it serves as the oracle here: randomized interleavings of sends
//! and receives (with wildcard sources/tags) are fed to both the oracle and
//! the bucketed FIFOs, and every match must agree — same id, same order,
//! every step.

use smpi::matching::{env_matches, MsgFifos, RecvFifos, ANY_SOURCE, ANY_TAG};

/// The old engine's semantics: flat per-(cid, dst) queues, linear scan for
/// the earliest compatible entry in post order.
#[derive(Default)]
struct Oracle {
    /// (cid, dst, src, tag, id) in send-post order.
    msgs: Vec<(u32, u32, u32, i32, u64)>,
    /// (cid, dst, src-spec, tag-spec, id) in recv-post order.
    recvs: Vec<(u32, u32, i32, i32, u64)>,
}

impl Oracle {
    fn pop_msg(&mut self, cid: u32, dst: u32, want_src: i32, want_tag: i32) -> Option<u64> {
        let pos = self.msgs.iter().position(|&(c, d, src, tag, _)| {
            c == cid && d == dst && env_matches(want_src, want_tag, src, tag)
        })?;
        Some(self.msgs.remove(pos).4)
    }

    fn pop_recv(&mut self, cid: u32, dst: u32, msg_src: u32, msg_tag: i32) -> Option<u64> {
        let pos = self.recvs.iter().position(|&(c, d, src, tag, _)| {
            c == cid && d == dst && env_matches(src, tag, msg_src, msg_tag)
        })?;
        Some(self.recvs.remove(pos).4)
    }
}

/// Deterministic 64-bit LCG (Knuth's MMIX constants); no external crates.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Runs one randomized interleaving, mirroring the runtime's flow: a send
/// first tries the posted-receive store, a receive first tries the pending-
/// message store; the loser of each race is enqueued.
fn run_interleaving(seed: u64, ops: usize, sources: u64, tags: u64, wildcard_pct: u64) {
    let mut rng = Lcg(seed);
    let mut oracle = Oracle::default();
    let mut msg_fifos: MsgFifos<u64> = MsgFifos::new();
    let mut recv_fifos: RecvFifos<u64> = RecvFifos::new();
    for step in 0..ops {
        let cid = rng.below(2) as u32;
        let dst = rng.below(3) as u32;
        // Post order doubles as both the id and the sequence stamp.
        let id = step as u64;
        if rng.below(2) == 0 {
            // Send with a concrete envelope.
            let src = rng.below(sources) as u32;
            let tag = rng.below(tags) as i32;
            let got = recv_fifos.pop_match(cid, dst, src, tag);
            let want = oracle.pop_recv(cid, dst, src, tag);
            assert_eq!(
                got, want,
                "seed {seed} step {step}: send ({cid},{dst},{src},{tag}) matched differently"
            );
            if got.is_none() {
                msg_fifos.push(cid, dst, src, tag, id, id);
                oracle.msgs.push((cid, dst, src, tag, id));
            }
        } else {
            // Receive; each of src/tag is independently a wildcard.
            let src = if rng.below(100) < wildcard_pct {
                ANY_SOURCE
            } else {
                rng.below(sources) as i32
            };
            let tag = if rng.below(100) < wildcard_pct {
                ANY_TAG
            } else {
                rng.below(tags) as i32
            };
            let got = msg_fifos.pop_match(cid, dst, src, tag);
            let want = oracle.pop_msg(cid, dst, src, tag);
            assert_eq!(
                got, want,
                "seed {seed} step {step}: recv ({cid},{dst},{src},{tag}) matched differently"
            );
            if got.is_none() {
                recv_fifos.push(cid, dst, src, tag, id, id);
                oracle.recvs.push((cid, dst, src, tag, id));
            }
        }
    }

    // Drain what's left through wildcard receives / fresh sends so the
    // stores' orderings are compared to the very end.
    for step in 0..oracle.msgs.len() * 2 {
        let cid = (step % 2) as u32;
        let dst = (step % 3) as u32;
        let got = msg_fifos.pop_match(cid, dst, ANY_SOURCE, ANY_TAG);
        let want = oracle.pop_msg(cid, dst, ANY_SOURCE, ANY_TAG);
        assert_eq!(got, want, "seed {seed} drain {step} diverged");
    }
}

#[test]
fn fifo_matching_agrees_with_linear_scan_oracle() {
    for seed in 1..=8 {
        run_interleaving(seed, 4000, 6, 4, 30);
    }
}

#[test]
fn fifo_matching_agrees_under_heavy_wildcards() {
    for seed in 100..=103 {
        run_interleaving(seed, 3000, 4, 3, 80);
    }
}

#[test]
fn fifo_matching_agrees_with_no_wildcards() {
    for seed in 200..=203 {
        run_interleaving(seed, 3000, 5, 5, 0);
    }
}

#[test]
fn fifo_matching_agrees_on_single_channel_hotspot() {
    // Everything funnels into one (src, tag) pair on one destination — the
    // regime where the old scan was worst and bucket order must still hold.
    for seed in 300..=302 {
        run_interleaving(seed, 2000, 1, 1, 50);
    }
}
