//! Observability layer end-to-end: metrics snapshots, rank timelines,
//! link-utilization integrals, Paje export and self-profiling.

use std::sync::Arc;

use smpi::trace;
use smpi::{MpiProfile, World};
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use surf_sim::TransferModel;

fn world(n: usize) -> World {
    let rp = Arc::new(RoutedPlatform::new(flat_cluster(
        "t",
        n,
        &ClusterConfig::default(),
    )));
    World::smpi(rp, TransferModel::ideal())
}

/// Deterministic 4-rank pingpong: 0↔1 and 2↔3, `rounds` exchanges of
/// `elems` f64 each way.
fn pingpong4(rounds: usize, elems: usize) -> impl Fn(&smpi::Ctx) + Send + Sync {
    move |ctx: &smpi::Ctx| {
        let comm = ctx.world();
        let r = ctx.rank();
        let peer = r ^ 1; // 0<->1, 2<->3
        let buf = vec![r as f64; elems];
        for round in 0..rounds {
            let tag = round as i32;
            if r.is_multiple_of(2) {
                ctx.send(&buf, peer, tag, &comm);
                let _ = ctx.recv_vec::<f64>(peer as i32, tag, elems, &comm);
            } else {
                let _ = ctx.recv_vec::<f64>(peer as i32, tag, elems, &comm);
                ctx.send(&buf, peer, tag, &comm);
            }
        }
    }
}

#[test]
fn metrics_are_off_by_default() {
    let report = world(2).run(2, |ctx| ctx.barrier(&ctx.world()));
    assert!(report.metrics.is_none());
    // Event counters are always collected; phase timings need metrics on.
    assert!(report.profile.simcalls > 0);
    assert!(report.profile.phases.is_empty());
}

#[test]
fn link_byte_integrals_match_wire_bytes() {
    // In a flat cluster every route is exactly 2 links (host -> switch ->
    // host), so the per-link byte integrals must sum to 2x the wire volume.
    let report = world(4)
        .metrics(true)
        .tracing(true)
        .run(4, pingpong4(3, 512));
    let s = trace::stats(&report.trace);
    assert!(s.wire_bytes > 0);
    let m = report.metrics.as_ref().unwrap();
    let link_bytes: f64 = m
        .fcounters
        .iter()
        .filter(|(k, _)| k.starts_with("surf.link.") && k.ends_with(".bytes"))
        .map(|(_, v)| v)
        .sum();
    let expected = 2.0 * s.wire_bytes as f64;
    let rel = (link_bytes - expected).abs() / expected;
    assert!(
        rel < 1e-6,
        "link integrals {link_bytes} != 2 x wire bytes {expected} (rel {rel:.2e})"
    );
    // The utilization gauges cover the same links and the kernel counted
    // its rate recomputations.
    assert!(m.gauges.iter().any(|(k, _)| k.ends_with(".util")));
    assert!(m.counter("surf.reshares") > 0);
}

#[test]
fn rank_timelines_track_blocking_and_compute() {
    // Rank 0 computes, then sends; rank 1 posts its receive immediately, so
    // it must sit in blocked_in_recv for (at least) the compute time.
    let flops = 1e7; // 10 ms at the default 1 Gf/s node speed
    let report = world(2).metrics(true).run(2, move |ctx| {
        let comm = ctx.world();
        if ctx.rank() == 0 {
            ctx.compute(flops);
            ctx.send(&[1.0f64; 64], 1, 0, &comm);
        } else {
            let _ = ctx.recv_vec::<f64>(0, 0, 64, &comm);
        }
    });
    let m = report.metrics.as_ref().unwrap();
    let end = report.sim_time;
    let t0 = m.timeline("rank", 0).expect("rank 0 timeline");
    let t1 = m.timeline("rank", 1).expect("rank 1 timeline");
    let compute_secs = flops / 1e9;
    assert!((t0.time_in_state("computing", end) - compute_secs).abs() < 1e-9);
    assert!(t1.time_in_state("blocked_in_recv", end) >= compute_secs * 0.99);
    // Both timelines start running and end finished.
    for tl in [t0, t1] {
        assert_eq!(tl.events.first().map(|e| e.time), Some(0.0));
        assert!(tl.time_in_state("finished", end + 1.0) > 0.0);
    }
}

#[test]
fn protocol_counters_split_eager_and_rendezvous() {
    let report = world(2).metrics(true).tracing(true).run(2, |ctx| {
        let comm = ctx.world();
        if ctx.rank() == 0 {
            ctx.send(&[0u8; 100], 1, 0, &comm); // eager
            ctx.send(&vec![0u8; 100_000], 1, 1, &comm); // rendezvous
        } else {
            let _ = ctx.recv_vec::<u8>(0, 0, 100, &comm);
            let _ = ctx.recv_vec::<u8>(0, 1, 100_000, &comm);
        }
    });
    let m = report.metrics.as_ref().unwrap();
    assert_eq!(m.counter("core.sends.eager"), 1);
    assert_eq!(m.counter("core.sends.rendezvous"), 1);
    assert_eq!(m.fcounter("core.bytes.posted"), 100_100.0);
    let s = trace::stats(&report.trace);
    assert_eq!(
        m.counter("core.sends.eager") + m.counter("core.sends.rendezvous"),
        s.sends as u64
    );
}

#[test]
fn collective_regions_are_counted_and_timed() {
    let report = world(4).metrics(true).run(4, |ctx| {
        let comm = ctx.world();
        let mine = [ctx.rank() as f64];
        let _ = ctx.allreduce(&mine, &smpi::op::sum::<f64>(), &comm);
        ctx.barrier(&comm);
    });
    let m = report.metrics.as_ref().unwrap();
    // Every rank enters each collective region once.
    assert_eq!(m.counter("core.coll.allreduce"), 4);
    assert_eq!(m.counter("core.coll.barrier"), 4);
    // The regions show up on every rank's state timeline. Time inside a
    // region is charged to the innermost state (nested collectives and
    // blocked_* waits), so assert on the push-to-matching-pop span.
    let mut allreduce_span = 0.0;
    for tl in m.timelines_of("rank") {
        let mut depth = 0usize;
        let mut entered = None;
        for ev in &tl.events {
            match ev.op {
                smpi_obs::StateOp::Push(s) => {
                    if s == "allreduce" && entered.is_none() {
                        entered = Some((ev.time, depth));
                    }
                    depth += 1;
                }
                smpi_obs::StateOp::Pop => {
                    depth -= 1;
                    if let Some((t0, d)) = entered {
                        if depth == d {
                            allreduce_span += ev.time - t0;
                            entered = None;
                        }
                    }
                }
                smpi_obs::StateOp::Set(_) => {}
            }
        }
        assert!(entered.is_none(), "unbalanced allreduce region");
    }
    assert!(allreduce_span > 0.0);
}

#[test]
fn algorithm_variants_are_region_annotated() {
    // Dispatchers name the MPI operation; the variants underneath name the
    // actual algorithm, so captured traces and Paje regions identify both.
    let report = world(4).metrics(true).run(4, |ctx| {
        let comm = ctx.world();
        let mine = [ctx.rank() as f64];
        // allreduce on 4 ranks dispatches to recursive doubling.
        let _ = ctx.allreduce(&mine, &smpi::op::sum::<f64>(), &comm);
        let _ = ctx.reduce(&mine, &smpi::op::sum::<f64>(), 0, &comm);
        let _ = ctx.allgather_ring(&mine, &comm);
        let _ = ctx.allgather_rdb(&mine, &comm);
        let mut buf = [0.0f64];
        ctx.bcast_linear(&mut buf, 0, &comm);
        let chunk = 1;
        let root_buf = [0.0f64; 4];
        let send = (ctx.rank() == 0).then_some(&root_buf[..]);
        let _ = ctx.scatter_linear(send, chunk, 0, &comm);
        let _ = ctx.scatter_chain(send, chunk, 0, &comm);
    });
    let m = report.metrics.as_ref().unwrap();
    // Nested: the dispatcher region plus the variant it picked.
    assert_eq!(m.counter("core.coll.allreduce"), 4);
    assert_eq!(m.counter("core.coll.allreduce_rdb"), 4);
    // reduce on 4 ranks with a commutative op takes the binomial tree.
    assert_eq!(m.counter("core.coll.reduce"), 4);
    assert_eq!(m.counter("core.coll.reduce_binomial"), 4);
    for variant in [
        "allgather_ring",
        "allgather_rdb",
        "bcast_linear",
        "scatter_linear",
        "scatter_chain",
    ] {
        assert_eq!(m.counter(&format!("core.coll.{variant}")), 4, "{variant}");
    }
}

#[test]
fn packet_backend_emits_queue_and_hop_metrics() {
    let rp = Arc::new(RoutedPlatform::new(flat_cluster(
        "p",
        2,
        &ClusterConfig::default(),
    )));
    let report = World::testbed(rp, MpiProfile::openmpi_like())
        .metrics(true)
        .run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                ctx.send(&vec![0u8; 10_000], 1, 0, &comm);
            } else {
                let _ = ctx.recv_vec::<u8>(0, 0, 10_000, &comm);
            }
        });
    let m = report.metrics.as_ref().unwrap();
    assert!(m.counter("packetnet.messages") >= 1);
    assert!(m.counter("packetnet.frames.total") >= 1);
    assert!(m.counter("packetnet.frames.hops") >= m.counter("packetnet.frames.total"));
    let h = m
        .histogram("packetnet.hop_latency_ns")
        .expect("hop histogram");
    assert_eq!(h.count, m.counter("packetnet.frames.hops"));
    assert!(h.min > 0.0);
    assert!(m.hwms.iter().any(|(k, _)| k.starts_with("packetnet.chan.")));
}

#[test]
fn self_profile_reports_phases_and_throughput() {
    let report = world(4)
        .metrics(true)
        .tracing(true)
        .run(4, pingpong4(2, 256));
    let p = &report.profile;
    assert!(p.simcalls > 0);
    assert!(p.tokens > 0);
    assert!(p.events() == p.simcalls + p.tokens);
    assert!(p.trace_events as usize == report.trace.len());
    assert!(p.wall_seconds > 0.0);
    assert!(p.events_per_sec() > 0.0);
    let names: Vec<&str> = p.phases.iter().map(|(n, _)| *n).collect();
    for expect in [
        "actor_execution",
        "simcall_handling",
        "fabric_advance",
        "waiter_resolution",
    ] {
        assert!(names.contains(&expect), "missing phase {expect}");
    }
    assert!(p.phases.iter().all(|(_, s)| *s >= 0.0));
    let rendered = p.render();
    assert!(rendered.contains("events/s"));
    assert!(rendered.contains("fabric_advance"));
}

#[test]
fn critical_path_spans_the_run() {
    let report = world(4)
        .metrics(true)
        .tracing(true)
        .run(4, pingpong4(2, 4096));
    let cp = report.critical_path().expect("trace is non-empty");
    assert!((cp.total - report.sim_time).abs() < 1e-12);
    assert!(cp.message_hops > 0);
    let sum: f64 = cp.segments.iter().map(|(_, s)| s).sum();
    // Segments partition the chain: they sum to the makespan (the chain
    // starts at an event at t=0 because every rank starts at 0).
    assert!((sum - cp.total).abs() < 1e-9);
    // With metrics on, message edges carry contention attribution: the
    // winning chain names the specific bottleneck links, not the anonymous
    // "network" bucket.
    assert!(
        cp.segments.iter().any(|(w, _)| w.starts_with("link:")),
        "no link-attributed segment in {:?}",
        cp.segments
    );
}

#[test]
fn contention_shares_conserve_link_bytes() {
    // Tentpole invariant, flow backend: per link, the per-flow share
    // integrals sum to the link's byte integral.
    let report = world(4).metrics(true).run(4, pingpong4(3, 512));
    let c = report.contention.as_ref().expect("metrics => contention");
    assert!(!c.flows.is_empty());
    let m = report.metrics.as_ref().unwrap();
    let mut active = 0;
    for (l, r) in c.link_rollup().iter().enumerate() {
        let counter = m.fcounter(&format!("surf.link.{l}.bytes"));
        assert!(
            (r.share_bytes - counter).abs() <= 1e-9 * counter.max(1.0),
            "link {l}: flow shares sum to {} but the link moved {counter}",
            r.share_bytes
        );
        if counter > 0.0 {
            active += 1;
        }
    }
    assert!(active > 0, "no link carried traffic");
    // Every flow's transfer time is fully attributed somewhere.
    for f in &c.flows {
        assert!(f.attr.share_bytes > 0.0);
        assert!(f.attr.bottlenecked_secs() + f.attr.unattributed_secs > 0.0);
    }
}

#[test]
fn packet_contention_shares_conserve_channel_bytes() {
    // Same invariant on the packet backend: per channel, flow share
    // integrals sum to the channel's wire-byte counter.
    let rp = Arc::new(RoutedPlatform::new(flat_cluster(
        "p",
        4,
        &ClusterConfig::default(),
    )));
    let report = World::testbed(rp, MpiProfile::openmpi_like())
        .metrics(true)
        .run(4, pingpong4(2, 2048));
    let c = report.contention.as_ref().expect("metrics => contention");
    assert!(!c.flows.is_empty());
    let m = report.metrics.as_ref().unwrap();
    for (ch, r) in c.link_rollup().iter().enumerate() {
        let counter = m.fcounter(&format!("packetnet.chan.{ch}.bytes"));
        assert!(
            (r.share_bytes - counter).abs() <= 1e-9 * counter.max(1.0),
            "channel {ch}: flow shares sum to {} but the channel moved {counter}",
            r.share_bytes
        );
    }
    // Channel names come from the platform's link table.
    assert!(c.link_names.iter().any(|n| n.contains("p-")));
}

#[test]
fn json_export_carries_metrics_and_profile() {
    let report = world(2).metrics(true).tracing(true).run(2, |ctx| {
        let comm = ctx.world();
        if ctx.rank() == 0 {
            ctx.send(&[1u32; 16], 1, 0, &comm);
        } else {
            let _ = ctx.recv_vec::<u32>(0, 0, 16, &comm);
        }
    });
    let json = report.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    for k in [
        "\"sim_time\":",
        "\"trace_stats\":",
        "\"metrics\":{",
        "\"core.sends.eager\":",
        "\"timelines\":",
        "\"contention\":{",
        "\"link_names\":",
        "\"rank_blocked\":",
        "\"profile\":{",
        "\"events_per_sec\":",
    ] {
        assert!(json.contains(k), "missing {k} in JSON export");
    }
    let opens = json.matches(['{', '[']).count();
    let closes = json.matches(['}', ']']).count();
    assert_eq!(opens, closes);
}

/// The golden scenario: 2 ranks, one eager 800-byte message, fully
/// deterministic. Regenerate with `BLESS=1 cargo test -p smpi --test obs`.
fn golden_report() -> smpi::RunReport<()> {
    let rp = Arc::new(RoutedPlatform::new(flat_cluster(
        "g",
        2,
        &ClusterConfig::default(),
    )));
    World::smpi(rp, TransferModel::ideal())
        .metrics(true)
        .tracing(true)
        .run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                ctx.send(&[0.5f64; 100], 1, 7, &comm);
            } else {
                let _ = ctx.recv_vec::<f64>(0, 7, 100, &comm);
            }
        })
}

#[test]
fn paje_export_matches_golden_file() {
    let paje = golden_report().paje();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/pingpong.paje");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden_path, &paje).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file (run with BLESS=1)");
    assert_eq!(paje, golden, "Paje output drifted from the golden file");
}

#[test]
fn paje_export_is_structurally_valid() {
    let paje = golden_report().paje();
    // Header: the full event-definition set.
    assert_eq!(paje.matches("%EndEventDef").count(), 13);
    assert!(paje.starts_with("%EventDef"));
    // One container per rank plus the root, all destroyed at the end.
    let creates: Vec<&str> = paje.lines().filter(|l| l.starts_with("5 ")).collect();
    for c in ["sim", "rank0", "rank1"] {
        assert!(
            creates
                .iter()
                .any(|l| l.split_whitespace().nth(2) == Some(c)),
            "container {c} missing"
        );
    }
    let destroys = paje.lines().filter(|l| l.starts_with("6 ")).count();
    assert_eq!(creates.len(), destroys);
    // Arrows are paired, routed through the 2-link route's containers:
    // rank0 -> link -> link -> rank1 makes three start/end pairs for the
    // single wire transfer.
    assert_eq!(paje.lines().filter(|l| l.starts_with("11 ")).count(), 3);
    assert_eq!(paje.lines().filter(|l| l.starts_with("12 ")).count(), 3);
    // Body timestamps never decrease.
    let mut last = f64::NEG_INFINITY;
    for line in paje.lines() {
        if line.starts_with('%') || line.is_empty() {
            continue;
        }
        let t: f64 = line
            .split_whitespace()
            .nth(1)
            .and_then(|f| f.parse().ok())
            .unwrap_or(last);
        assert!(t >= last, "time went backwards: {line}");
        last = t;
    }
}
