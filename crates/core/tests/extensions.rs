//! Tests of the future-work extensions (§5.3, §8): comm_split, adaptive
//! sampling, tuned collectives.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use smpi::{op, MpiProfile, World, UNDEFINED_COLOR};
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use surf_sim::TransferModel;

fn worlds(n: usize) -> [World; 2] {
    let rp = Arc::new(RoutedPlatform::new(flat_cluster(
        "x",
        n,
        &ClusterConfig::default(),
    )));
    [
        World::smpi(Arc::clone(&rp), TransferModel::ideal()),
        World::testbed(rp, MpiProfile::openmpi_like()),
    ]
}

#[test]
fn comm_split_partitions_by_color() {
    for world in worlds(8) {
        let report = world.run(8, |ctx| {
            let comm = ctx.world();
            let color = (ctx.rank() % 3) as i32;
            let sub = ctx.comm_split(&comm, color, 0).expect("member");
            let r = ctx.rank() as i32;
            let sum = ctx.allreduce(&[r], &op::sum::<i32>(), &sub);
            (color, sub.size(), sum[0])
        });
        // Colors: 0 -> {0,3,6}, 1 -> {1,4,7}, 2 -> {2,5}.
        let expect = [(0, 3, 9), (1, 3, 12), (2, 2, 7)];
        for (r, &(color, size, sum)) in report.results.iter().enumerate() {
            let (ec, es, esum) = expect[r % 3];
            assert_eq!(color, ec);
            assert_eq!(size, es, "rank {r}");
            assert_eq!(sum, esum, "rank {r}");
        }
    }
}

#[test]
fn comm_split_key_orders_ranks() {
    for world in worlds(4) {
        let report = world.run(4, |ctx| {
            let comm = ctx.world();
            // Same color, reversed keys: rank 3 becomes rank 0 of the sub.
            let key = -(ctx.rank() as i32);
            let sub = ctx.comm_split(&comm, 0, key).unwrap();
            ctx.comm_rank(&sub)
        });
        assert_eq!(report.results, vec![3, 2, 1, 0]);
    }
}

#[test]
fn comm_split_undefined_returns_none() {
    for world in worlds(4) {
        let report = world.run(4, |ctx| {
            let comm = ctx.world();
            let color = if ctx.rank() < 2 { 0 } else { UNDEFINED_COLOR };
            let sub = ctx.comm_split(&comm, color, 0);
            match sub {
                Some(c) => {
                    let s = ctx.allreduce(&[1i32], &op::sum::<i32>(), &c);
                    s[0]
                }
                None => -1,
            }
        });
        assert_eq!(report.results, vec![2, 2, -1, -1]);
    }
}

#[test]
fn sample_auto_stops_after_convergence() {
    let executions = Arc::new(AtomicUsize::new(0));
    let ex = Arc::clone(&executions);
    let [world, _] = worlds(1);
    world.run(1, move |ctx| {
        for _ in 0..100 {
            ctx.sample_auto("steady", 0.5, 50, || {
                // A steady, measurable burst: converges quickly.
                std::hint::black_box((0..20_000u64).sum::<u64>());
                ex.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    let n = executions.load(Ordering::Relaxed);
    assert!(n >= 3, "needs at least 3 measurements, got {n}");
    assert!(n < 100, "never converged: {n} executions");
}

#[test]
fn sample_auto_respects_max_budget() {
    let executions = Arc::new(AtomicUsize::new(0));
    let ex = Arc::clone(&executions);
    let [world, _] = worlds(1);
    world.run(1, move |ctx| {
        for i in 0..50 {
            ctx.sample_auto("noisy", 1e-12, 10, || {
                // Extremely tight tolerance: budget must cap executions.
                std::hint::black_box((0..(i + 1) * 1000).sum::<usize>());
                ex.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert!(executions.load(Ordering::Relaxed) <= 11);
}

#[test]
fn bcast_tuned_matches_bcast() {
    for world in worlds(8) {
        world.run(8, |ctx| {
            let comm = ctx.world();
            // Long message: triggers the scatter+allgather path.
            let mut a: Vec<f64> = vec![0.0; 4096];
            let mut b = a.clone();
            if ctx.rank() == 2 {
                for (i, x) in a.iter_mut().enumerate() {
                    *x = i as f64;
                }
                b = a.clone();
            }
            ctx.bcast(&mut a, 2, &comm);
            ctx.bcast_tuned(&mut b, 2, &comm);
            assert_eq!(a, b);
            // Short message: binomial path.
            let mut c = [0u8; 16];
            let mut d = [0u8; 16];
            if ctx.rank() == 0 {
                c = [7; 16];
                d = [7; 16];
            }
            ctx.bcast(&mut c, 0, &comm);
            ctx.bcast_tuned(&mut d, 0, &comm);
            assert_eq!(c, d);
        });
    }
}

#[test]
fn scatter_tuned_matches_scatter() {
    for world in worlds(4) {
        world.run(4, |ctx| {
            let comm = ctx.world();
            let chunk = 16; // 128 B: the linear path on 4 ranks
            let data: Option<Vec<f64>> =
                (ctx.rank() == 0).then(|| (0..4 * chunk).map(|i| i as f64).collect());
            let a = ctx.scatter(data.as_deref(), chunk, 0, &comm);
            let b = ctx.scatter_tuned(data.as_deref(), chunk, 0, &comm);
            assert_eq!(a, b);
        });
    }
}

#[test]
fn nested_splits_compose() {
    let [world, _] = worlds(8);
    let report = world.run(8, |ctx| {
        let comm = ctx.world();
        // Split into halves, then split each half by parity.
        let half = ctx.comm_split(&comm, (ctx.rank() / 4) as i32, 0).unwrap();
        let parity = ctx
            .comm_split(&half, (ctx.comm_rank(&half) % 2) as i32, 0)
            .unwrap();
        let sum = ctx.allreduce(&[ctx.rank() as i32], &op::sum::<i32>(), &parity);
        (parity.size(), sum[0])
    });
    // Halves {0..4} and {4..8}; parities {0,2}/{1,3} and {4,6}/{5,7}.
    let expect = [
        (2, 2),
        (2, 4),
        (2, 2),
        (2, 4),
        (2, 10),
        (2, 12),
        (2, 10),
        (2, 12),
    ];
    for (r, (&got, &want)) in report.results.iter().zip(&expect).enumerate() {
        assert_eq!(got, want, "rank {r}");
    }
}
