//! Property tests for the `TITRACE2` binary codec.
//!
//! Three layers, hammered separately and together:
//!
//! * **wire primitives** — varint/zigzag/float-XOR-delta round-trips at
//!   randomly drawn and boundary values;
//! * **LZSS** — compress/decompress round-trips, with and without the
//!   anchor-block preset dictionary;
//! * **the full container** — random traces survive
//!   encode → decode → re-encode *byte-identically* (the codec's opcode
//!   choices are deterministic functions of decoder-visible state), at the
//!   default block size and at adversarially tiny ones; and every
//!   truncation or single-byte corruption of a valid container produces a
//!   typed [`TiV2Error`] or a decoded trace — never a panic, never an
//!   unbounded allocation.

use proptest::prelude::*;
use smpi::capture_v2::{encode_v2_blocks, lz, wire};
use smpi::{decode_v2, encode_v2, TiOp, TiTrace, WaitMode};

// ---------------------------------------------------------------- strategies

/// Small closed vocabulary for region/collective names: the dictionary
/// interns strings, so reuse (not variety) is the interesting case.
const NAMES: &[&str] = &["allreduce", "bcast", "coll:alltoall", "phase-2", "x"];

fn arb_name() -> impl Strategy<Value = String> {
    (0usize..NAMES.len()).prop_map(|i| NAMES[i].to_string())
}

fn arb_op() -> impl Strategy<Value = TiOp> {
    prop_oneof![
        // Integral flop counts (the OP_COMPUTE_INT fast path) including
        // the 2^53 exactness boundary.
        (0u64..(1u64 << 53)).prop_map(|n| TiOp::Compute { flops: n as f64 }),
        // Fractional / extreme floats (the XOR-delta path). No NaN: the
        // codec is bit-exact but `TiTrace` equality is not.
        prop_oneof![
            (0.0f64..1e15).prop_map(|f| f + 0.25),
            Just(-1.5e300),
            Just(f64::INFINITY),
            Just(f64::MIN_POSITIVE),
            Just(-0.0f64),
        ]
        .prop_map(|flops| TiOp::Compute { flops }),
        (0.0f64..10.0).prop_map(|secs| TiOp::Sleep { secs }),
        (0u32..64, 0u32..4, -1i32..1 << 20, 0u64..u64::MAX).prop_map(|(dst, cid, tag, bytes)| {
            TiOp::Send {
                dst,
                cid,
                tag,
                bytes,
            }
        }),
        (-2i32..64, 0u32..4, -2i32..1 << 20, 0u64..u64::MAX).prop_map(
            |(src, cid, tag, max_bytes)| TiOp::Recv {
                src,
                cid,
                tag,
                max_bytes
            }
        ),
        (proptest::collection::vec(0u32..100_000, 0..6), 0u8..4u8).prop_map(|(reqs, m)| {
            TiOp::Wait {
                reqs,
                mode: match m {
                    0 => WaitMode::All,
                    1 => WaitMode::Any,
                    2 => WaitMode::Some,
                    _ => WaitMode::Poll,
                },
            }
        }),
        (arb_name(), 0u8..2u8).prop_map(|(name, e)| TiOp::Region {
            name,
            enter: e == 0
        }),
        (
            arb_name(),
            proptest::option::of(arb_name()),
            0u32..500,
            0u32..200
        )
            .prop_map(|(name, algo, span, posts)| TiOp::Coll {
                name,
                algo: algo.unwrap_or_default(),
                span,
                posts,
            }),
    ]
}

fn arb_trace() -> impl Strategy<Value = TiTrace> {
    proptest::collection::vec(proptest::collection::vec(arb_op(), 0..40), 1..6)
        .prop_map(|ranks| TiTrace { ranks })
}

/// A fixed, fully deterministic trace covering every opcode — including
/// the SAME-route, WAIT_NEXT and COMPUTE_INT fast paths and enough
/// cross-rank repetition that the encoder emits anchor-dictionary (`comp
/// == 2`) blocks. Used by the exhaustive truncation/corruption sweeps,
/// which want one representative container, not a random one.
fn sample_trace() -> TiTrace {
    let rank = |r: u32| -> Vec<TiOp> {
        let mut ops = Vec::new();
        for i in 0..6u32 {
            ops.push(TiOp::Compute {
                flops: f64::from(1000 + i),
            });
            ops.push(TiOp::Send {
                dst: (r + i) % 4,
                cid: 0,
                tag: 7,
                bytes: 4096,
            });
            ops.push(TiOp::Recv {
                src: ((r + 9 - i) % 4) as i32,
                cid: 0,
                tag: 7,
                max_bytes: 4096,
            });
            ops.push(TiOp::Wait {
                reqs: vec![2 * i, 2 * i + 1],
                mode: WaitMode::All,
            });
        }
        ops.push(TiOp::Region {
            name: "allreduce".into(),
            enter: true,
        });
        ops.push(TiOp::Sleep { secs: 1.5e-6 });
        ops.push(TiOp::Region {
            name: "allreduce".into(),
            enter: false,
        });
        ops.push(TiOp::Coll {
            name: "allreduce".into(),
            algo: "rdb".into(),
            span: 3,
            posts: 0,
        });
        ops
    };
    TiTrace {
        ranks: (0..4).map(rank).collect(),
    }
}

// ----------------------------------------------------------- wire primitives

#[test]
fn varint_boundary_values_round_trip() {
    let cases = [
        0u64,
        1,
        0x7f,
        0x80,
        0x3fff,
        0x4000,
        u64::from(u32::MAX),
        (1 << 53) - 1,
        u64::MAX - 1,
        u64::MAX,
    ];
    for v in cases {
        let mut buf = Vec::new();
        wire::put_uvarint(&mut buf, v);
        assert_eq!(buf.len(), wire::uvarint_len(v), "uvarint_len({v})");
        let mut pos = 0;
        assert_eq!(wire::get_uvarint(&buf, &mut pos), Ok(v));
        assert_eq!(pos, buf.len());
    }
    for v in [0i64, -1, 1, i64::MIN, i64::MAX, -64, 64] {
        let mut buf = Vec::new();
        wire::put_ivarint(&mut buf, v);
        let mut pos = 0;
        assert_eq!(wire::get_ivarint(&buf, &mut pos), Ok(v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn uvarint_round_trips(v in 0u64..u64::MAX) {
        let mut buf = Vec::new();
        wire::put_uvarint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(wire::get_uvarint(&buf, &mut pos), Ok(v));
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn ivarint_round_trips(v in i64::MIN..i64::MAX) {
        let mut buf = Vec::new();
        wire::put_ivarint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(wire::get_ivarint(&buf, &mut pos), Ok(v));
    }

    #[test]
    fn zigzag_is_a_bijection(v in i64::MIN..i64::MAX) {
        prop_assert_eq!(wire::unzigzag(wire::zigzag(v)), v);
    }

    #[test]
    fn f64_delta_is_bit_exact(prev in -1e300f64..1e300, cur in -1e300f64..1e300) {
        let back = wire::f64_undelta(prev, wire::f64_delta(prev, cur));
        prop_assert_eq!(back.to_bits(), cur.to_bits());
    }

    /// A truncated varint is a typed error, not a hang or a panic.
    #[test]
    fn truncated_uvarint_is_an_error(v in 0x80u64..u64::MAX) {
        let mut buf = Vec::new();
        wire::put_uvarint(&mut buf, v);
        for cut in 0..buf.len() - 1 {
            let mut pos = 0;
            prop_assert!(wire::get_uvarint(&buf[..cut], &mut pos).is_err());
        }
    }
}

// ------------------------------------------------------------------- LZSS

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lz_round_trips(data in proptest::collection::vec(0u8..8, 0..2000)) {
        // A tiny alphabet forces matches; the raw-vs-compressed choice is
        // the writer's job, so `compress` output may be larger than input.
        let packed = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&packed, data.len()), Ok(data));
    }

    #[test]
    fn lz_with_dict_round_trips(
        dict in proptest::collection::vec(0u8..8, 0..512),
        data in proptest::collection::vec(0u8..8, 0..512),
    ) {
        let packed = lz::compress_with_dict(&dict, &data);
        prop_assert_eq!(lz::decompress_with_dict(&dict, &packed, data.len()), Ok(data));
    }

    /// Self-similar input compressed against itself as the dictionary is
    /// the anchor-block case: it must round-trip and actually shrink.
    #[test]
    fn lz_dict_folds_near_clones(data in proptest::collection::vec(0u8..4, 64..512)) {
        let packed = lz::compress_with_dict(&data, &data);
        prop_assert_eq!(
            lz::decompress_with_dict(&data, &packed, data.len()),
            Ok(data.clone())
        );
        prop_assert!(packed.len() < data.len());
    }
}

// ------------------------------------------------------------- the container

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode → decode → encode is byte-stable at the default block size:
    /// every opcode choice (route vs new, SAME, WAIT_NEXT, COMPUTE_INT,
    /// compression mode) is a deterministic function of state the decoder
    /// reconstructs.
    #[test]
    fn encode_decode_encode_is_byte_stable(trace in arb_trace()) {
        let bytes = encode_v2(&trace);
        let decoded = decode_v2(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &trace);
        prop_assert_eq!(encode_v2(&decoded), bytes);
    }

    /// Block boundaries are invisible to the decoded result: any block
    /// size (down to one op per block, which maximizes context resets and
    /// anchor-dictionary use) reproduces the trace, and stays byte-stable
    /// at that same block size.
    #[test]
    fn block_size_does_not_change_the_trace(
        trace in arb_trace(),
        block_ops in 1usize..17,
    ) {
        let bytes = encode_v2_blocks(&trace, block_ops);
        let decoded = decode_v2(&bytes).expect("decodes at any block size");
        prop_assert_eq!(&decoded, &trace);
        prop_assert_eq!(encode_v2_blocks(&decoded, block_ops), bytes);
    }

    /// Flipping any single byte of a valid container must yield either a
    /// typed error or a (different) decoded trace — never a panic, and
    /// never an implausible allocation (all counts are cap-checked).
    #[test]
    fn corrupted_containers_never_panic(
        seed_ix in 0usize..usize::MAX,
        xor in 1u8..=255,
    ) {
        let bytes = encode_v2_blocks(&sample_trace(), 8);
        let ix = seed_ix % bytes.len();
        let mut bad = bytes.clone();
        bad[ix] ^= xor;
        match decode_v2(&bad) {
            Ok(_) => {}
            Err(e) => prop_assert!(!e.context.is_empty() && !e.message.is_empty()),
        }
    }
}

/// Every proper prefix of a valid container is rejected with a typed
/// error: the fixed-position trailer magic + footer length make silent
/// truncation detectable at any cut point.
#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = encode_v2_blocks(&sample_trace(), 8);
    assert_eq!(decode_v2(&bytes).unwrap(), sample_trace());
    for cut in 0..bytes.len() {
        let err = decode_v2(&bytes[..cut]).expect_err("truncated container must not decode");
        assert!(!err.to_string().is_empty());
    }
}

/// The representative container exercises the dictionary-compressed block
/// mode (comp == 2): ranks run near-identical programs, so post-anchor
/// blocks should fold against the anchor payload.
#[test]
fn sample_container_uses_the_anchor_dictionary() {
    let bytes = encode_v2_blocks(&sample_trace(), 8);
    // comp tags live inside block extents; cheapest reliable probe is that
    // dictionary folding makes the container smaller than independent
    // per-block compression can. Re-encode each rank alone and compare.
    let whole = bytes.len();
    let split: usize = sample_trace()
        .ranks
        .iter()
        .map(|r| {
            encode_v2_blocks(
                &TiTrace {
                    ranks: vec![r.clone()],
                },
                8,
            )
            .len()
        })
        .sum();
    assert!(
        whole < split,
        "anchor dictionary should beat per-rank encoding ({whole} vs {split})"
    );
}
