//! Protocol-profile behaviour: the knobs that differentiate MPI
//! personalities must have the documented effects on timing.

use std::sync::Arc;

use smpi::{Backend, MpiProfile, World};
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use surf_sim::{EngineConfig, TransferModel};

fn rp() -> Arc<RoutedPlatform> {
    Arc::new(RoutedPlatform::new(flat_cluster(
        "pf",
        2,
        &ClusterConfig::default(),
    )))
}

fn pingpong_time(profile: MpiProfile, bytes: usize) -> f64 {
    let world = World::new(
        rp(),
        Backend::Surf {
            model: TransferModel::ideal(),
            engine: EngineConfig::default(),
        },
        profile,
    );
    world
        .run(2, move |ctx| {
            let comm = ctx.world();
            let buf = vec![0u8; bytes];
            let mut sink = vec![0u8; bytes];
            let t0 = ctx.wtime();
            if ctx.rank() == 0 {
                ctx.send(&buf, 1, 0, &comm);
                ctx.recv(&mut sink, 1, 0, &comm);
            } else {
                ctx.recv(&mut sink, 0, 0, &comm);
                ctx.send(&buf, 0, 0, &comm);
            }
            ctx.wtime() - t0
        })
        .results[0]
}

#[test]
fn send_overhead_adds_per_message_cost() {
    let base = MpiProfile::smpi();
    let mut with = MpiProfile::smpi();
    with.send_overhead = 10e-6;
    let t0 = pingpong_time(base, 100);
    let t1 = pingpong_time(with, 100);
    // Two messages per round trip, each paying the overhead.
    let delta = t1 - t0;
    assert!(
        (delta - 20e-6).abs() < 2e-6,
        "expected ~20us of overhead, got {delta}"
    );
}

#[test]
fn copy_rate_penalizes_eager_only() {
    let mut slow_copy = MpiProfile::smpi();
    slow_copy.copy_rate = Some(1e6); // absurdly slow: 1 MB/s
    let base = MpiProfile::smpi();
    // Eager message (under threshold): copy penalty applies.
    let eager_delta =
        pingpong_time(slow_copy.clone(), 10_000) - pingpong_time(base.clone(), 10_000);
    assert!(
        eager_delta > 0.015,
        "eager copy penalty missing: {eager_delta}"
    );
    // Rendezvous message: zero-copy, no penalty.
    let rdv_delta = pingpong_time(slow_copy, 100_000) - pingpong_time(base, 100_000);
    assert!(
        rdv_delta.abs() < 1e-3,
        "rendezvous must be zero-copy: {rdv_delta}"
    );
}

#[test]
fn wire_efficiency_slows_large_messages_proportionally() {
    let mut eff = MpiProfile::smpi();
    eff.wire_efficiency = 0.5;
    let t_full = pingpong_time(MpiProfile::smpi(), 1 << 20);
    let t_half = pingpong_time(eff, 1 << 20);
    let ratio = t_half / t_full;
    assert!(
        (ratio - 2.0).abs() < 0.05,
        "halving efficiency must ~double the time: {ratio}"
    );
}

#[test]
fn eager_threshold_moves_the_protocol_switch() {
    // With a tiny threshold, a 10 KB message behaves synchronously: the
    // sender blocks until the receive is posted.
    let mut tiny = MpiProfile::smpi();
    tiny.eager_threshold = 1024;
    let world = World::new(
        rp(),
        Backend::Surf {
            model: TransferModel::ideal(),
            engine: EngineConfig::default(),
        },
        tiny,
    );
    let report = world.run(2, |ctx| {
        let comm = ctx.world();
        if ctx.rank() == 0 {
            let t0 = ctx.wtime();
            ctx.send(&[0u8; 10_000], 1, 0, &comm);
            ctx.wtime() - t0
        } else {
            ctx.sleep(1.0);
            let _ = ctx.recv_vec::<u8>(0, 0, 10_000, &comm);
            0.0
        }
    });
    assert!(
        report.results[0] >= 1.0,
        "10 KB above a 1 KB threshold must rendezvous: {}",
        report.results[0]
    );
}

#[test]
fn rendezvous_handshake_adds_round_trip() {
    let mut hs = MpiProfile::smpi();
    hs.rendezvous_handshake = true;
    let t0 = pingpong_time(MpiProfile::smpi(), 1 << 20);
    let t1 = pingpong_time(hs, 1 << 20);
    // Two rendezvous messages per round trip, each paying ~2x control
    // latency (2 x 100us route latency here).
    let delta = t1 - t0;
    assert!(
        delta > 300e-6 && delta < 1e-3,
        "handshake delta out of range: {delta}"
    );
}
