//! End-to-end behaviour of the point-to-point layer, on both backends.

use std::sync::Arc;

use smpi::{MpiProfile, World, ANY_SOURCE, ANY_TAG};
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use surf_sim::TransferModel;

fn platform(n: usize) -> Arc<RoutedPlatform> {
    Arc::new(RoutedPlatform::new(flat_cluster(
        "t",
        n,
        &ClusterConfig::default(),
    )))
}

fn smpi_world(n: usize) -> World {
    World::smpi(platform(n), TransferModel::ideal())
}

fn testbed_world(n: usize) -> World {
    World::testbed(platform(n), MpiProfile::openmpi_like())
}

fn both(n: usize) -> [World; 2] {
    [smpi_world(n), testbed_world(n)]
}

#[test]
fn blocking_send_recv_delivers_data() {
    for world in both(2) {
        let report = world.run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
                ctx.send(&data, 1, 7, &comm);
                0.0
            } else {
                let (data, status) = ctx.recv_vec::<f64>(0, 7, 100, &comm);
                assert_eq!(status.source, 0);
                assert_eq!(status.tag, 7);
                assert_eq!(status.count::<f64>(), 100);
                data.iter().sum::<f64>()
            }
        });
        assert_eq!(report.results[1], 4950.0);
        assert!(report.sim_time > 0.0);
    }
}

#[test]
fn messages_do_not_overtake_between_same_pair() {
    for world in both(2) {
        let report = world.run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                ctx.send(&[1u32], 1, 5, &comm);
                ctx.send(&[2u32], 1, 5, &comm);
                ctx.send(&[3u32], 1, 5, &comm);
                vec![]
            } else {
                let mut got = Vec::new();
                for _ in 0..3 {
                    let (d, _) = ctx.recv_vec::<u32>(0, 5, 1, &comm);
                    got.push(d[0]);
                }
                got
            }
        });
        assert_eq!(report.results[1], vec![1, 2, 3]);
    }
}

#[test]
fn wildcards_match_any_source_and_tag() {
    for world in both(3) {
        let report = world.run(3, |ctx| {
            let comm = ctx.world();
            match ctx.rank() {
                0 => {
                    let mut sum = 0u64;
                    for _ in 0..2 {
                        let (d, status) = ctx.recv_vec::<u64>(ANY_SOURCE, ANY_TAG, 1, &comm);
                        assert!(status.source == 1 || status.source == 2);
                        sum += d[0];
                    }
                    sum
                }
                r => {
                    ctx.send(&[r as u64 * 10], 0, r as i32, &comm);
                    0
                }
            }
        });
        assert_eq!(report.results[0], 30);
    }
}

#[test]
fn tag_selectivity_reorders_delivery() {
    for world in both(2) {
        let report = world.run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                ctx.send(&[1u8], 1, 100, &comm);
                ctx.send(&[2u8], 1, 200, &comm);
                vec![]
            } else {
                // Receive tag 200 first even though it was sent second.
                let (b, _) = ctx.recv_vec::<u8>(0, 200, 1, &comm);
                let (a, _) = ctx.recv_vec::<u8>(0, 100, 1, &comm);
                vec![b[0], a[0]]
            }
        });
        assert_eq!(report.results[1], vec![2, 1]);
    }
}

#[test]
fn sendrecv_exchanges_without_deadlock() {
    for world in both(4) {
        let report = world.run(4, |ctx| {
            let comm = ctx.world();
            let p = ctx.size();
            let r = ctx.rank();
            // Every rank exchanges a large (rendezvous-sized) buffer with
            // its ring neighbours simultaneously.
            let data = vec![r as f64; 32 * 1024];
            let mut incoming = vec![0.0f64; 32 * 1024];
            let right = (r + 1) % p;
            let left = (r + p - 1) % p;
            ctx.sendrecv(&data, right, 1, &mut incoming, left as i32, 1, &comm);
            incoming[0]
        });
        assert_eq!(
            report.results,
            vec![3.0, 0.0, 1.0, 2.0] // value from the left neighbour
        );
    }
}

#[test]
fn isend_irecv_wait_family() {
    for world in both(2) {
        world.run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                let reqs: Vec<_> = (0..4)
                    .map(|i| ctx.isend(&[i as u32; 8], 1, i, &comm))
                    .collect();
                ctx.wait_all_sends(reqs);
            } else {
                let reqs: Vec<_> = (0..4).map(|i| ctx.irecv::<u32>(0, i, 8, &comm)).collect();
                let results = ctx.wait_all_recvs(reqs, &comm);
                for (i, (data, status)) in results.iter().enumerate() {
                    assert_eq!(data[0], i as u32);
                    assert_eq!(status.tag, i as i32);
                }
            }
        });
    }
}

#[test]
fn wait_any_returns_exactly_one() {
    for world in both(2) {
        world.run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                // Large then small: the small one finishes first.
                ctx.send(&vec![0u8; 1_000_000], 1, 1, &comm);
                ctx.send(&[1u8], 1, 2, &comm);
            } else {
                let big = ctx.irecv::<u8>(0, 1, 1_000_000, &comm);
                let small = ctx.irecv::<u8>(0, 2, 1, &comm);
                let set = [big.into_any(), small.into_any()];
                let first = ctx.wait_any(&set);
                assert!(first.index < 2);
                assert!(first.data.is_some());
                // Exactly one completed; the other is still waitable.
                let rest = ctx.wait_all(&[set[1 - first.index]]);
                assert_eq!(rest.len(), 1);
                assert!(rest[0].data.is_some());
            }
        });
    }
}

#[test]
fn test_poll_is_nonblocking() {
    for world in both(2) {
        world.run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                // Delay the send so rank 1's first poll sees nothing.
                ctx.sleep(0.5);
                ctx.send(&[9u8], 1, 3, &comm);
            } else {
                let r = ctx.irecv::<u8>(0, 3, 1, &comm);
                let set = [r.into_any()];
                let early = ctx.test(&set);
                assert!(early.is_empty(), "poll must not block or lie");
                let done = ctx.wait_all(&set);
                assert_eq!(done.len(), 1);
                assert_eq!(done[0].data.as_ref().unwrap()[0], 9);
            }
        });
    }
}

#[test]
fn persistent_requests_restart() {
    for world in both(2) {
        let report = world.run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                let p = ctx.send_init(&[41u32], 1, 0, &comm);
                for _ in 0..3 {
                    let r = ctx.start_send(&p);
                    ctx.wait_send(r);
                }
                0
            } else {
                let p = ctx.recv_init::<u32>(0, 0, 1, &comm);
                let mut total = 0;
                for _ in 0..3 {
                    let r = ctx.start_recv(&p);
                    let (d, _) = ctx.wait_recv(r, &comm);
                    total += d[0];
                }
                total
            }
        });
        assert_eq!(report.results[1], 123);
    }
}

#[test]
fn self_send_works() {
    for world in both(2) {
        let report = world.run(2, |ctx| {
            let comm = ctx.world();
            let r = ctx.irecv::<u32>(ctx.rank() as i32, 0, 4, &comm);
            ctx.send(&[7u32, 8, 9, 10], ctx.rank(), 0, &comm);
            let (d, _) = ctx.wait_recv(r, &comm);
            d.iter().sum::<u32>()
        });
        assert_eq!(report.results, vec![34, 34]);
    }
}

#[test]
fn eager_sender_completes_before_receiver_posts() {
    // An eager (small) send must complete even though the receive is posted
    // much later — the unexpected-message path.
    for world in both(2) {
        let report = world.run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                let t0 = ctx.wtime();
                ctx.send(&[5u8; 100], 1, 0, &comm);
                let t1 = ctx.wtime();
                t1 - t0
            } else {
                ctx.sleep(2.0);
                let (d, _) = ctx.recv_vec::<u8>(0, 0, 100, &comm);
                assert_eq!(d[0], 5);
                0.0
            }
        });
        assert!(
            report.results[0] < 1.0,
            "eager send should not wait for the receiver (took {})",
            report.results[0]
        );
    }
}

#[test]
fn rendezvous_sender_blocks_until_receiver_posts() {
    for world in both(2) {
        let report = world.run(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                let t0 = ctx.wtime();
                ctx.send(&vec![1u8; 1_000_000], 1, 0, &comm); // > 64 KiB
                ctx.wtime() - t0
            } else {
                ctx.sleep(2.0);
                let _ = ctx.recv_vec::<u8>(0, 0, 1_000_000, &comm);
                0.0
            }
        });
        assert!(
            report.results[0] >= 2.0,
            "rendezvous send must wait for the receive post (took {})",
            report.results[0]
        );
    }
}

#[test]
fn simulations_are_deterministic() {
    let run = || {
        smpi_world(4).run(4, |ctx| {
            let comm = ctx.world();
            let p = ctx.size();
            let r = ctx.rank();
            let mut acc = 0.0f64;
            for round in 0..3 {
                let data = vec![r as f64 + round as f64; 1000];
                let mut incoming = vec![0.0; 1000];
                ctx.sendrecv(
                    &data,
                    (r + 1) % p,
                    round,
                    &mut incoming,
                    ((r + p - 1) % p) as i32,
                    round,
                    &comm,
                );
                acc += incoming[0];
            }
            (acc, ctx.wtime())
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    assert_eq!(a.sim_time, b.sim_time);
    assert_eq!(a.finish_times, b.finish_times);
}

#[test]
#[should_panic(expected = "MPI_ERR_TRUNCATE")]
fn truncation_is_an_error() {
    smpi_world(2).run(2, |ctx| {
        let comm = ctx.world();
        if ctx.rank() == 0 {
            ctx.send(&[0u8; 64], 1, 0, &comm);
        } else {
            let _ = ctx.recv_vec::<u8>(0, 0, 16, &comm);
        }
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn unmatched_recv_deadlocks_loudly() {
    smpi_world(2).run(2, |ctx| {
        let comm = ctx.world();
        if ctx.rank() == 1 {
            let _ = ctx.recv_vec::<u8>(0, 0, 1, &comm); // never sent
        }
    });
}
