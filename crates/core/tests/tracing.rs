//! Tracing subsystem behaviour end-to-end.

use std::sync::Arc;

use smpi::trace::{self, TraceKind};
use smpi::World;
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use surf_sim::TransferModel;

fn world() -> World {
    let rp = Arc::new(RoutedPlatform::new(flat_cluster(
        "t",
        2,
        &ClusterConfig::default(),
    )));
    World::smpi(rp, TransferModel::ideal())
}

#[test]
fn trace_is_empty_by_default() {
    let report = world().run(2, |ctx| ctx.barrier(&ctx.world()));
    assert!(report.trace.is_empty());
}

#[test]
fn trace_records_a_send_recv_lifecycle() {
    let report = world().tracing(true).run(2, |ctx| {
        let comm = ctx.world();
        if ctx.rank() == 0 {
            ctx.send(&[1.0f64; 100], 1, 9, &comm);
        } else {
            let _ = ctx.recv_vec::<f64>(0, 9, 100, &comm);
        }
    });
    let s = trace::stats(&report.trace);
    assert_eq!(s.sends, 1);
    assert_eq!(s.recvs, 1);
    assert_eq!(s.delivered, 1);
    assert_eq!(s.bytes_delivered, 800);
    // Events are time-ordered.
    for w in report.trace.windows(2) {
        assert!(w[0].time <= w[1].time);
    }
    // The lifecycle is complete: post -> wire -> delivered -> finish.
    let kinds: Vec<_> = report
        .trace
        .iter()
        .map(|e| std::mem::discriminant(&e.kind))
        .collect();
    assert!(kinds.len() >= 5); // send, recv, wire, delivered, 2x finished
    assert!(report
        .trace
        .iter()
        .any(|e| matches!(e.kind, TraceKind::TransferStarted { .. })));
    assert_eq!(
        report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::RankFinished { .. }))
            .count(),
        2
    );
}

#[test]
fn trace_distinguishes_eager_and_rendezvous() {
    let report = world().tracing(true).run(2, |ctx| {
        let comm = ctx.world();
        if ctx.rank() == 0 {
            ctx.send(&[0u8; 100], 1, 0, &comm); // eager
            ctx.send(&vec![0u8; 100_000], 1, 1, &comm); // rendezvous
        } else {
            let _ = ctx.recv_vec::<u8>(0, 0, 100, &comm);
            let _ = ctx.recv_vec::<u8>(0, 1, 100_000, &comm);
        }
    });
    let protos: Vec<bool> = report
        .trace
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::SendPosted { eager, .. } => Some(eager),
            _ => None,
        })
        .collect();
    assert_eq!(protos, vec![true, false]);
}

#[test]
fn trace_counts_collective_point_to_points() {
    // A binomial bcast over 8 ranks must generate exactly 7 messages —
    // the "collectives are sets of point-to-point communications" property
    // (§4.2), visible in the trace.
    let rp = Arc::new(RoutedPlatform::new(flat_cluster(
        "t8",
        8,
        &ClusterConfig::default(),
    )));
    let report = World::smpi(rp, TransferModel::ideal())
        .tracing(true)
        .run(8, |ctx| {
            let mut buf = [0u8; 64];
            ctx.bcast(&mut buf, 0, &ctx.world());
        });
    let s = trace::stats(&report.trace);
    assert_eq!(s.sends, 7);
    assert_eq!(s.delivered, 7);
}

#[test]
fn trace_records_exec() {
    let report = world().tracing(true).run(2, |ctx| ctx.compute(1e6));
    assert_eq!(
        report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::ExecStarted { .. }))
            .count(),
        2
    );
}

#[test]
fn trace_renders() {
    let report = world().tracing(true).run(2, |ctx| {
        let comm = ctx.world();
        if ctx.rank() == 0 {
            ctx.send(&[1u32], 1, 0, &comm);
        } else {
            let _ = ctx.recv_vec::<u32>(0, 0, 1, &comm);
        }
    });
    let text = trace::render(&report.trace);
    assert!(text.contains("send-post"));
    assert!(text.contains("delivered"));
    assert_eq!(text.lines().count(), report.trace.len());
}
