//! Property-based tests of the stochastic variability models.
//!
//! Invariants checked on random amplitudes, seeds and platform shapes:
//! 1. Bounds: every sampled factor lies inside `[1 - a, 1 + a)` for its
//!    axis amplitude `a`, and the overlay always validates.
//! 2. Purity: sampling is a pure function of `(model, platform, rng key)` —
//!    byte-identical draws, no hidden state.
//! 3. Identity: the zero-amplitude model samples the exact identity
//!    overlay, and a replay under it is *byte-identical* to a replay with
//!    no overlay at all (`x * 1.0 == x`, end to end through the kernel).

use std::sync::Arc;

use proptest::prelude::*;
use smpi::{TiTrace, World};
use smpi_platform::{flat_cluster, ClusterConfig, Platform, RoutedPlatform};
use smpi_sweep::{CbRng, NoiseModel};
use surf_sim::TransferModel;

fn platform(hosts: usize) -> Platform {
    flat_cluster("n", hosts, &ClusterConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sampled factor respects its axis amplitude bound.
    #[test]
    fn factors_stay_within_amplitude(
        bw in 0.0f64..0.9,
        lat in 0.0f64..0.9,
        speed in 0.0f64..0.9,
        seed in 0u64..u64::MAX,
        hosts in 2usize..10,
    ) {
        let model = NoiseModel { link_bandwidth: bw, link_latency: lat, host_speed: speed };
        prop_assert!(model.validate().is_ok());
        let p = platform(hosts);
        let s = model.sample(&p, &CbRng::new(seed));
        prop_assert!(s.validate(&p).is_ok());
        let within = |fs: &[f64], a: f64| fs.iter().all(|f| (1.0 - a..1.0 + a).contains(f));
        prop_assert!(within(&s.link_bandwidth, bw.max(f64::EPSILON)));
        prop_assert!(within(&s.link_latency, lat.max(f64::EPSILON)));
        prop_assert!(within(&s.host_speed, speed.max(f64::EPSILON)));
    }

    /// Sampling is a pure function of (model, platform, key): no hidden
    /// state, no order dependence.
    #[test]
    fn sampling_is_pure(
        amp in 0.0f64..0.9,
        seed in 0u64..u64::MAX,
        stream in 0u64..u64::MAX,
        hosts in 2usize..10,
    ) {
        let model = NoiseModel::uniform_jitter(amp);
        let p = platform(hosts);
        let key = CbRng::new(seed).stream(stream);
        let a = model.sample(&p, &key);
        // Interleave unrelated draws — they must not perturb the result.
        let _ = model.sample(&p, &CbRng::new(seed ^ 1));
        let b = model.sample(&p, &key);
        prop_assert_eq!(a.host_speed, b.host_speed);
        prop_assert_eq!(a.link_bandwidth, b.link_bandwidth);
        prop_assert_eq!(a.link_latency, b.link_latency);
    }

    /// The zero model samples the identity overlay for any platform/seed.
    #[test]
    fn zero_amplitude_samples_identity(seed in 0u64..u64::MAX, hosts in 2usize..10) {
        let p = platform(hosts);
        let s = NoiseModel::none().sample(&p, &CbRng::new(seed));
        prop_assert!(s.is_identity());
    }
}

/// Zero-amplitude end-to-end: a perturbed replay under the identity
/// overlay is byte-identical to an unperturbed replay — same makespan
/// bits, same per-rank finish times, same recaptured trace.
#[test]
fn zero_amplitude_replay_is_byte_identical() {
    let rp = Arc::new(RoutedPlatform::new(platform(4)));
    let world = World::smpi(Arc::clone(&rp), TransferModel::default_affine()).capture(true);
    let online = world.run(4, |ctx| {
        ctx.compute(1e5);
        let x = [ctx.rank() as f64];
        ctx.allreduce(&x, &smpi::op::sum::<f64>(), &ctx.world());
    });
    let trace: Arc<TiTrace> = Arc::new(online.ti_trace.unwrap());

    let plain = smpi_replay::replay_shared(&world.clone().capture(true), Arc::clone(&trace));
    let identity = NoiseModel::none().sample(rp.platform(), &CbRng::new(99));
    let perturbed_world = world.capture(true).perturbation(Arc::new(identity));
    let perturbed = smpi_replay::replay_shared(&perturbed_world, Arc::clone(&trace));

    assert_eq!(plain.sim_time.to_bits(), perturbed.sim_time.to_bits());
    assert_eq!(plain.finish_times, perturbed.finish_times);
    assert_eq!(plain.ti_trace, perturbed.ti_trace);
}

/// Non-zero amplitude is not a no-op (the overlay actually reaches the
/// kernel's rate computations).
#[test]
fn nonzero_amplitude_changes_timing() {
    let rp = Arc::new(RoutedPlatform::new(platform(4)));
    let world = World::smpi(Arc::clone(&rp), TransferModel::default_affine()).capture(true);
    let online = world.run(4, |ctx| {
        let payload = vec![1.0f64; 64 * 1024];
        let mut buf = vec![0.0f64; 64 * 1024];
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        ctx.sendrecv(&payload, right, 1, &mut buf, left as i32, 1, &ctx.world());
    });
    let trace = Arc::new(online.ti_trace.unwrap());

    let plain = smpi_replay::replay_shared(&world, Arc::clone(&trace));
    let jitter = NoiseModel::uniform_jitter(0.3).sample(rp.platform(), &CbRng::new(7));
    let perturbed = smpi_replay::replay_shared(
        &world.clone().perturbation(Arc::new(jitter)),
        Arc::clone(&trace),
    );
    assert_ne!(plain.sim_time, perturbed.sim_time);
}
