//! The sweep's central contract: worker count is a performance knob, not a
//! semantic one. The same matrix swept with 1, 4 and 16 workers must
//! produce a byte-identical streamed results table (ordered by stable
//! scenario id, not completion order) and identical per-cell
//! distributions — including the stochastic cells, whose perturbations are
//! drawn from counter-based streams keyed by the scenario, never by the
//! thread that happens to run it.

use std::sync::Arc;

use smpi::{TiTrace, World};
use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use smpi_sweep::{run_sweep, FabricKind, NoiseAxis, Program, SweepConfig};
use surf_sim::TransferModel;

fn platform(name: &str, hosts: usize) -> (String, Arc<RoutedPlatform>) {
    (
        name.to_string(),
        Arc::new(RoutedPlatform::new(flat_cluster(
            name,
            hosts,
            &ClusterConfig::default(),
        ))),
    )
}

/// Captures a little app exercising p2p (eager + rendezvous) and a
/// collective, so replays traverse the full protocol surface.
fn capture(rp: &Arc<RoutedPlatform>) -> Arc<TiTrace> {
    let world = World::smpi(Arc::clone(rp), TransferModel::default_affine()).capture(true);
    let report = world.run(6, |ctx| {
        ctx.compute(2e5 * (ctx.rank() % 3 + 1) as f64);
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        let mut small = vec![0.0f64; 16];
        let mut big = vec![0.0f64; 32 * 1024];
        let payload = vec![ctx.rank() as f64; 32 * 1024];
        ctx.sendrecv(
            &payload[..16],
            right,
            1,
            &mut small,
            left as i32,
            1,
            &ctx.world(),
        );
        ctx.sendrecv(&payload, right, 2, &mut big, left as i32, 2, &ctx.world());
        let x = [big[0] + 1.0];
        ctx.allreduce(&x, &smpi::op::sum::<f64>(), &ctx.world());
    });
    Arc::new(report.ti_trace.unwrap())
}

fn matrix(workers: usize) -> SweepConfig {
    let p0 = platform("alpha", 6);
    let trace = capture(&p0.1);
    SweepConfig {
        programs: vec![Program::trace("ring6", trace)],
        platforms: vec![p0, platform("beta", 12)],
        fabrics: vec![
            ("surf".into(), FabricKind::surf()),
            ("packet".into(), FabricKind::packet()),
        ],
        calibrations: vec![
            ("affine".into(), TransferModel::default_affine()),
            ("affine-slow".into(), TransferModel::affine(2.0, 0.7)),
        ],
        noises: vec![NoiseAxis::none(), NoiseAxis::jitter("j15", 0.15, 4)],
        workers,
        seed: 20260809,
        strip_hostdep: true,
    }
}

#[test]
fn worker_count_never_changes_results() {
    // 1 program × 2 platforms × (surf × 2 cals + packet) × 2 noise axes
    // = 12 cells, (1 + 4) reps per platform-fabric-cal group = 30 scenarios.
    let mut tables: Vec<String> = Vec::new();
    let mut reports = Vec::new();
    for workers in [1, 4, 16] {
        let cfg = matrix(workers);
        assert_eq!(cfg.scenario_count(), 30);
        let (mut report, lines) = run_sweep(&cfg, Vec::new()).unwrap();
        assert_eq!(report.workers, workers);
        assert_eq!(report.stats.total_scenarios(), 30);
        {
            use smpi_obs::Deterministic as _;
            report.strip_nondeterminism();
        }
        tables.push(String::from_utf8(lines).unwrap());
        reports.push(report);
    }

    // Byte-identical streamed tables, in stable scenario-id order.
    assert_eq!(tables[0], tables[1], "1 vs 4 workers");
    assert_eq!(tables[0], tables[2], "1 vs 16 workers");
    let ids: Vec<usize> = tables[0]
        .lines()
        .map(|l| {
            l.strip_prefix("{\"scenario\":")
                .and_then(|r| r.split(',').next())
                .and_then(|n| n.parse().ok())
                .expect("scenario id leads every line")
        })
        .collect();
    assert_eq!(ids, (0..30).collect::<Vec<_>>());

    // Identical aggregation: every cell's distribution matches exactly.
    for r in &reports[1..] {
        assert_eq!(r.cells.len(), reports[0].cells.len());
        for (a, b) in reports[0].cells.iter().zip(&r.cells) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.makespan, b.makespan, "{:?}", a.key);
        }
        // The stripped per-cell JSON view is identical too (worker stats
        // legitimately differ in shape, so compare the cells section).
        let cells_json = |rep: &smpi_sweep::SweepReport| {
            let json = rep.to_json();
            json[json.find("\"cells\"").unwrap()..].to_string()
        };
        assert_eq!(cells_json(&reports[0]), cells_json(r));
    }

    // The deterministic axis really is deterministic, and jitter really
    // does produce spread (the axes are not accidentally swapped).
    for c in &reports[0].cells {
        match c.key.noise.as_str() {
            "none" => assert_eq!(c.makespan.n, 1),
            "j15" => {
                assert_eq!(c.makespan.n, 4);
                assert!(
                    c.makespan.max > c.makespan.min,
                    "jitter cell {:?} has zero spread",
                    c.key
                );
            }
            other => panic!("unexpected noise axis {other}"),
        }
    }
}

#[test]
fn rerunning_the_same_config_is_byte_stable() {
    let cfg = matrix(4);
    let (_, a) = run_sweep(&cfg, Vec::new()).unwrap();
    let (_, b) = run_sweep(&cfg, Vec::new()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn seed_changes_stochastic_cells_only() {
    let mut cfg = matrix(2);
    let (ra, _) = run_sweep(&cfg, Vec::new()).unwrap();
    cfg.seed = 1;
    let (rb, _) = run_sweep(&cfg, Vec::new()).unwrap();
    let mut stochastic_changed = false;
    for (a, b) in ra.cells.iter().zip(&rb.cells) {
        if a.key.noise == "none" {
            assert_eq!(a.makespan, b.makespan, "seed leaked into {:?}", a.key);
        } else if a.makespan != b.makespan {
            stochastic_changed = true;
        }
    }
    assert!(stochastic_changed, "new seed must redraw the jitter");
}
