//! Stochastic variability models: amplitudes → platform perturbations.
//!
//! A [`NoiseModel`] is a *distribution family* over platforms: bounded
//! multiplicative jitter amplitudes for link bandwidth, link latency and
//! host speed. Sampling it with a [`CbRng`] yields a concrete
//! [`PlatformPerturbation`] — every factor drawn uniformly from
//! `[1 - a, 1 + a)` for the axis amplitude `a`. Because the draw is
//! counter-based (stream per resource class, counter per resource index),
//! the sampled perturbation is a pure function of `(model, rng key)` and
//! never depends on thread scheduling.
//!
//! The zero-amplitude model samples the identity overlay, which the
//! platform layer applies bit-exactly (`x * 1.0 == x`) — so a "no noise"
//! sweep cell is byte-identical to a run with no overlay at all.

use smpi_platform::{Platform, PlatformPerturbation};

use crate::rng::CbRng;

/// Sub-stream tags for the three resource classes.
const STREAM_LINK_BW: u64 = 0;
const STREAM_LINK_LAT: u64 = 1;
const STREAM_HOST_SPEED: u64 = 2;

/// Bounded multiplicative jitter amplitudes (each in `[0, 1)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Per-link bandwidth jitter amplitude: factors in `[1-a, 1+a)`.
    pub link_bandwidth: f64,
    /// Per-link latency jitter amplitude.
    pub link_latency: f64,
    /// Per-host speed jitter amplitude.
    pub host_speed: f64,
}

impl NoiseModel {
    /// The deterministic model: samples the identity perturbation.
    pub fn none() -> Self {
        NoiseModel {
            link_bandwidth: 0.0,
            link_latency: 0.0,
            host_speed: 0.0,
        }
    }

    /// Uniform jitter with the same amplitude on all three axes.
    pub fn uniform_jitter(amplitude: f64) -> Self {
        NoiseModel {
            link_bandwidth: amplitude,
            link_latency: amplitude,
            host_speed: amplitude,
        }
    }

    /// `true` when every amplitude is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.link_bandwidth == 0.0 && self.link_latency == 0.0 && self.host_speed == 0.0
    }

    /// Checks every amplitude is finite and in `[0, 1)` (an amplitude of 1
    /// would allow zero bandwidth/speed factors, which the platform layer
    /// rejects as non-physical).
    pub fn validate(&self) -> Result<(), String> {
        for (name, a) in [
            ("link_bandwidth", self.link_bandwidth),
            ("link_latency", self.link_latency),
            ("host_speed", self.host_speed),
        ] {
            if !a.is_finite() || !(0.0..1.0).contains(&a) {
                return Err(format!("noise amplitude {name} = {a} outside [0, 1)"));
            }
        }
        Ok(())
    }

    /// Samples a concrete perturbation for `platform` from the stream of
    /// `rng`: resource `i` of each class draws its factor at counter `i` of
    /// the class's sub-stream. Pure in `(self, platform shape, rng)`.
    pub fn sample(&self, platform: &Platform, rng: &CbRng) -> PlatformPerturbation {
        let mut p = PlatformPerturbation::identity(platform);
        if self.is_zero() {
            return p;
        }
        let draw = |stream: &CbRng, i: usize, amp: f64| -> f64 {
            if amp == 0.0 {
                1.0
            } else {
                1.0 + amp * stream.symmetric(i as u64)
            }
        };
        let bw = rng.stream(STREAM_LINK_BW);
        let lat = rng.stream(STREAM_LINK_LAT);
        let speed = rng.stream(STREAM_HOST_SPEED);
        for i in 0..p.link_bandwidth.len() {
            p.link_bandwidth[i] = draw(&bw, i, self.link_bandwidth);
        }
        for i in 0..p.link_latency.len() {
            p.link_latency[i] = draw(&lat, i, self.link_latency);
        }
        for i in 0..p.host_speed.len() {
            p.host_speed[i] = draw(&speed, i, self.host_speed);
        }
        debug_assert!(p.validate(platform).is_ok());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpi_platform::{flat_cluster, ClusterConfig};

    fn platform() -> Platform {
        flat_cluster("n", 4, &ClusterConfig::default())
    }

    #[test]
    fn zero_model_samples_identity() {
        let p = platform();
        let s = NoiseModel::none().sample(&p, &CbRng::new(9));
        assert!(s.is_identity());
    }

    #[test]
    fn factors_respect_amplitude_bounds() {
        let p = platform();
        let m = NoiseModel {
            link_bandwidth: 0.3,
            link_latency: 0.1,
            host_speed: 0.05,
        };
        let s = m.sample(&p, &CbRng::new(1));
        assert!(s.link_bandwidth.iter().all(|f| (0.7..1.3).contains(f)));
        assert!(s.link_latency.iter().all(|f| (0.9..1.1).contains(f)));
        assert!(s.host_speed.iter().all(|f| (0.95..1.05).contains(f)));
        assert!(s.validate(&p).is_ok());
    }

    #[test]
    fn sampling_is_pure_and_seed_sensitive() {
        let p = platform();
        let m = NoiseModel::uniform_jitter(0.2);
        let a = m.sample(&p, &CbRng::new(5).stream(2));
        let b = m.sample(&p, &CbRng::new(5).stream(2));
        assert_eq!(a.link_bandwidth, b.link_bandwidth);
        assert_eq!(a.host_speed, b.host_speed);
        let c = m.sample(&p, &CbRng::new(5).stream(3));
        assert_ne!(a.link_bandwidth, c.link_bandwidth);
    }

    #[test]
    fn validate_rejects_out_of_range_amplitudes() {
        assert!(NoiseModel::uniform_jitter(0.999).validate().is_ok());
        assert!(NoiseModel::uniform_jitter(1.0).validate().is_err());
        assert!(NoiseModel::uniform_jitter(-0.1).validate().is_err());
        assert!(NoiseModel::uniform_jitter(f64::NAN).validate().is_err());
    }
}
