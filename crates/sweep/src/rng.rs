//! Counter-based pseudo-random numbers for reproducible sweeps.
//!
//! A sweep needs randomness that is a *pure function* of `(seed, stream,
//! counter)` — never of which worker thread draws it or in what order
//! scenarios complete. Sequential generators (PCG, xoshiro, …) carry
//! mutable state and would make scenario results depend on scheduling;
//! counter-based generators (Random123's Philox/Threefry family) instead
//! evaluate a keyed bijective mix of the counter. [`CbRng`] is a small
//! generator in that style built on the SplitMix64 finalizer, whose
//! avalanche quality is far beyond what bounded jitter factors need.
//!
//! Keys are derived, never mutated: [`CbRng::stream`] returns a *new*
//! generator for a sub-stream (per axis, per link class, …) and
//! [`CbRng::at`] evaluates the stream at a counter. Both are `&self`; a
//! `CbRng` can be shared by any number of threads.

/// Weyl-sequence increment (2^64 / φ), the SplitMix64 stream constant.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output mix: a bijective avalanche over `u64`.
fn mix(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

/// A counter-based generator: an immutable key evaluated at counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbRng {
    key: u64,
}

impl CbRng {
    /// Creates a generator from a user seed.
    pub fn new(seed: u64) -> Self {
        CbRng {
            key: mix(seed.wrapping_add(GAMMA)),
        }
    }

    /// Derives the generator of sub-stream `s`: statistically independent
    /// of this one and of every other sub-stream. Chain freely —
    /// `rng.stream(platform).stream(rep)` — the derivation is itself a
    /// pure function.
    pub fn stream(&self, s: u64) -> CbRng {
        CbRng {
            key: mix(self.key ^ mix(s.wrapping_mul(GAMMA).wrapping_add(GAMMA))),
        }
    }

    /// The raw 64-bit value of this stream at `counter`.
    pub fn at(&self, counter: u64) -> u64 {
        mix(self.key.wrapping_add(counter.wrapping_mul(GAMMA)))
    }

    /// Uniform double in `[0, 1)` at `counter` (53 mantissa bits).
    pub fn uniform(&self, counter: u64) -> f64 {
        (self.at(counter) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[-1, 1)` at `counter`.
    pub fn symmetric(&self, counter: u64) -> f64 {
        2.0 * self.uniform(counter) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_and_counter_is_pure() {
        let a = CbRng::new(42).stream(7);
        let b = CbRng::new(42).stream(7);
        for c in 0..100 {
            assert_eq!(a.at(c), b.at(c));
        }
    }

    #[test]
    fn streams_and_seeds_decorrelate() {
        let base = CbRng::new(1);
        assert_ne!(base.stream(0).at(0), base.stream(1).at(0));
        assert_ne!(CbRng::new(1).at(0), CbRng::new(2).at(0));
        // Order of stream derivation matters (it's a path, not a set).
        assert_ne!(
            base.stream(1).stream(2).at(0),
            base.stream(2).stream(1).at(0)
        );
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let rng = CbRng::new(0xDEAD_BEEF);
        for c in 0..10_000 {
            let u = rng.uniform(c);
            assert!((0.0..1.0).contains(&u));
            let s = rng.symmetric(c);
            assert!((-1.0..1.0).contains(&s));
        }
    }

    #[test]
    fn bits_look_balanced() {
        // Crude sanity: each output bit flips for roughly half the
        // counters (no stuck bits after the mix).
        let rng = CbRng::new(3);
        let n = 4096;
        for bit in 0..64 {
            let ones: u64 = (0..n).map(|c| (rng.at(c) >> bit) & 1).sum();
            assert!(
                (n / 4..3 * n / 4).contains(&ones),
                "bit {bit} set {ones}/{n} times"
            );
        }
    }
}
