//! Work-stealing job distribution for scenario execution.
//!
//! Each worker owns a deque seeded round-robin with scenario indices. The
//! owner pops from the *front* (FIFO — low scenario ids finish early, which
//! keeps the ordered emitter's reorder buffer small); thieves steal from
//! the *back* of a victim's deque (the jobs the owner would reach last),
//! the classic owner/thief end-split of work-stealing deques. Scenarios are
//! coarse (one full re-simulation each, milliseconds to seconds), so a
//! `Mutex<VecDeque>` per worker is contention-free in practice and keeps
//! the structure obviously correct; no job ever spawns another job, so a
//! full scan finding every deque empty is a proof of termination.
//!
//! Determinism does **not** depend on this module: scenario results are
//! pure functions of the scenario id, and the emitter reorders by id. The
//! pool only decides *who* computes *when*.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A claimed job: which scenario, and whether it was stolen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Scenario index to execute.
    pub id: usize,
    /// `true` when the job came from another worker's deque.
    pub stolen: bool,
}

/// Fixed-size pool of per-worker deques over a fixed job set.
pub struct StealPool {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealPool {
    /// Distributes jobs `0..jobs` round-robin over `workers` deques
    /// (worker `w` is seeded with jobs `w, w + workers, …` in increasing
    /// order, so every worker starts on low ids).
    pub fn new(workers: usize, jobs: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for job in 0..jobs {
            deques[job % workers].push_back(job);
        }
        StealPool {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Claims the next job for `worker`: its own front, else a steal from
    /// the back of the first non-empty victim (scanning round-robin from
    /// `worker + 1`). `None` means every deque is empty — since jobs never
    /// enqueue new jobs, that is global termination.
    pub fn pop(&self, worker: usize) -> Option<Job> {
        if let Some(id) = self.deques[worker].lock().unwrap().pop_front() {
            return Some(Job { id, stolen: false });
        }
        let n = self.deques.len();
        for k in 1..n {
            let victim = (worker + k) % n;
            if let Some(id) = self.deques[victim].lock().unwrap().pop_back() {
                return Some(Job { id, stolen: true });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_job_claimed_exactly_once() {
        let pool = StealPool::new(3, 10);
        let mut seen = HashSet::new();
        for w in [0, 0, 1, 2, 1, 0, 2, 2, 1, 0] {
            let job = pool.pop(w).expect("jobs remain");
            assert!(seen.insert(job.id), "job {} claimed twice", job.id);
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(pool.pop(0), None);
        assert_eq!(pool.pop(2), None);
    }

    #[test]
    fn owner_drains_fifo() {
        let pool = StealPool::new(2, 6);
        // Worker 0 owns 0, 2, 4 and pops them in that order.
        assert_eq!(
            pool.pop(0),
            Some(Job {
                id: 0,
                stolen: false
            })
        );
        assert_eq!(
            pool.pop(0),
            Some(Job {
                id: 2,
                stolen: false
            })
        );
        assert_eq!(
            pool.pop(0),
            Some(Job {
                id: 4,
                stolen: false
            })
        );
        // Then steals from the BACK of worker 1's deque (1, 3, 5 → 5).
        assert_eq!(
            pool.pop(0),
            Some(Job {
                id: 5,
                stolen: true
            })
        );
        // Worker 1 still gets its front.
        assert_eq!(
            pool.pop(1),
            Some(Job {
                id: 1,
                stolen: false
            })
        );
    }

    #[test]
    fn single_worker_is_sequential() {
        let pool = StealPool::new(1, 4);
        let order: Vec<usize> = std::iter::from_fn(|| pool.pop(0)).map(|j| j.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn concurrent_claims_partition_the_jobs() {
        let pool = StealPool::new(4, 1000);
        let claimed: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let pool = &pool;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(job) = pool.pop(w) {
                            mine.push(job.id);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
