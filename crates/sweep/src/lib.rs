//! # smpi-sweep — parallel replication sweeps with stochastic variability
//!
//! The paper's capture-once/replay-many workflow made single re-simulations
//! cheap; this crate makes *populations* of them cheap. A [`SweepConfig`]
//! crosses a scenario matrix — programs (captured time-independent traces
//! or capture-on-the-fly rank bodies, e.g. for collective-variant studies)
//! × platforms × network backends (the surf flow kernel or the packet-level
//! substrate) × calibrated transfer models × injected noise — and
//! [`run_sweep`] executes every cell's replications across a pool of worker
//! threads with work-stealing deques ([`pool`]).
//!
//! Three properties are load-bearing:
//!
//! * **Shared-immutable platforms.** Workers share `Arc<RoutedPlatform>`s
//!   (and through them the memoized [`smpi_platform::PlatformImage`]); each
//!   scenario materializes its own per-run simulation state, so scenarios
//!   are independent and embarrassingly parallel.
//! * **Scheduling-independent determinism.** Stochastic perturbations are
//!   drawn from a counter-based generator ([`rng::CbRng`]) keyed by
//!   `(sweep seed, platform, noise axis, replication)` — *never* by worker
//!   id or completion order — and results stream through a reorder buffer
//!   ([`table::OrderedEmitter`]) keyed by stable scenario id. The results
//!   table is byte-identical for 1 worker or 16.
//! * **Bounded memory.** One JSON line per finished scenario is emitted as
//!   soon as its id is next in sequence; only completion skew is buffered.
//!   Per-cell makespan distributions are folded at the end from the
//!   scalar outcomes, not from retained reports.
//!
//! Replications within a cell differ only by their perturbation draw; the
//! draw is shared across backends and calibrations of the same
//! `(platform, noise, replication)` — common random numbers, so paired
//! cell comparisons see the same "weather".

use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use smpi::{Backend, Ctx, MpiProfile, RunReport, TiTrace, World};
use smpi_obs::json::JsonBuf;
use smpi_obs::{SweepStats, WorkerStats};
use smpi_platform::RoutedPlatform;
use surf_sim::{EngineConfig, TransferModel};

pub mod noise;
pub mod pool;
pub mod rng;
pub mod table;

pub use noise::NoiseModel;
pub use rng::CbRng;
pub use table::{Distribution, OrderedEmitter};

use pool::StealPool;

/// What a scenario executes.
#[derive(Clone)]
pub enum Workload {
    /// Replay of a captured time-independent trace (no application code,
    /// no payload memory — the sweep fast path).
    Trace(Arc<TiTrace>),
    /// Replay straight from a shared streaming `TITRACE2` decoder: workers
    /// pull ops block-by-block, sharing in-flight decoded blocks, so the
    /// trace is decoded (at most) once while N scenarios replay it and
    /// per-worker memory stays bounded by block size.
    Stream(Arc<smpi::TiV2Reader>),
    /// Capture-on-the-fly: run a rank body on-line. Needed when the swept
    /// axis changes the simcall stream itself (e.g. collective algorithm
    /// variants), which a fixed trace cannot express.
    Online {
        /// MPI ranks to spawn.
        ranks: usize,
        /// The rank body (shared across workers).
        body: Arc<dyn Fn(&Ctx) + Send + Sync>,
    },
}

/// A named program axis entry.
#[derive(Clone)]
pub struct Program {
    /// Label used in results tables.
    pub name: String,
    /// What to execute.
    pub workload: Workload,
}

impl Program {
    /// A trace-replay program.
    pub fn trace(name: impl Into<String>, trace: Arc<TiTrace>) -> Self {
        Program {
            name: name.into(),
            workload: Workload::Trace(trace),
        }
    }

    /// A streaming-replay program over a shared `TITRACE2` decoder.
    pub fn stream(name: impl Into<String>, reader: Arc<smpi::TiV2Reader>) -> Self {
        Program {
            name: name.into(),
            workload: Workload::Stream(reader),
        }
    }

    /// An on-line (capture-on-the-fly) program.
    pub fn online(
        name: impl Into<String>,
        ranks: usize,
        body: impl Fn(&Ctx) + Send + Sync + 'static,
    ) -> Self {
        Program {
            name: name.into(),
            workload: Workload::Online {
                ranks,
                body: Arc::new(body),
            },
        }
    }
}

/// A network-backend axis entry (carries its MPI personality).
#[derive(Clone)]
pub enum FabricKind {
    /// The surf flow kernel; crossed with the calibration axis.
    Surf {
        /// Kernel configuration (contention, TCP window).
        engine: EngineConfig,
        /// MPI profile (eager/rendezvous thresholds etc.).
        profile: MpiProfile,
    },
    /// The packet-level substrate; ignores the calibration axis (its
    /// timing comes from framing, not a fitted transfer model).
    Packet {
        /// Framing parameters.
        config: packetnet::PacketConfig,
        /// MPI profile.
        profile: MpiProfile,
    },
}

impl FabricKind {
    /// Default surf kernel with the SMPI profile.
    pub fn surf() -> Self {
        FabricKind::Surf {
            engine: EngineConfig::default(),
            profile: MpiProfile::smpi(),
        }
    }

    /// Default packet substrate with the OpenMPI-like profile.
    pub fn packet() -> Self {
        FabricKind::Packet {
            config: packetnet::PacketConfig::default(),
            profile: MpiProfile::openmpi_like(),
        }
    }
}

/// A noise axis entry: a variability model plus how many replications to
/// draw from it.
#[derive(Clone)]
pub struct NoiseAxis {
    /// Label used in results tables.
    pub name: String,
    /// The jitter model.
    pub model: NoiseModel,
    /// Replications per cell (zero-noise axes typically use 1 — every
    /// replication would be identical).
    pub replications: u32,
}

impl NoiseAxis {
    /// The deterministic axis: no jitter, one replication.
    pub fn none() -> Self {
        NoiseAxis {
            name: "none".into(),
            model: NoiseModel::none(),
            replications: 1,
        }
    }

    /// A uniform-jitter axis.
    pub fn jitter(name: impl Into<String>, amplitude: f64, replications: u32) -> Self {
        NoiseAxis {
            name: name.into(),
            model: NoiseModel::uniform_jitter(amplitude),
            replications,
        }
    }
}

/// The scenario matrix plus execution parameters.
#[derive(Clone)]
pub struct SweepConfig {
    /// Program axis.
    pub programs: Vec<Program>,
    /// Platform axis (label, parsed-and-routed platform).
    pub platforms: Vec<(String, Arc<RoutedPlatform>)>,
    /// Backend axis.
    pub fabrics: Vec<(String, FabricKind)>,
    /// Calibration axis (crossed with surf fabrics only).
    pub calibrations: Vec<(String, TransferModel)>,
    /// Noise axis.
    pub noises: Vec<NoiseAxis>,
    /// Worker threads.
    pub workers: usize,
    /// Master seed: scenario `(cell, replication)` outcomes are a pure
    /// function of this (plus the matrix), independent of `workers`.
    pub seed: u64,
    /// Zero host-dependent fields (wall-clock, memory probe) in the
    /// streamed lines, making the table byte-stable across machines.
    pub strip_hostdep: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            programs: Vec::new(),
            platforms: Vec::new(),
            fabrics: Vec::new(),
            calibrations: Vec::new(),
            noises: Vec::new(),
            workers: 1,
            seed: 0,
            strip_hostdep: true,
        }
    }
}

/// One enumerated scenario: indices into the config's axes.
#[derive(Debug, Clone, Copy)]
struct ScenarioSpec {
    cell: usize,
    program: usize,
    platform: usize,
    fabric: usize,
    /// `None` for backends that ignore the calibration axis.
    cal: Option<usize>,
    noise: usize,
    rep: u32,
}

/// Labels identifying one matrix cell in reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellKey {
    /// Program label.
    pub program: String,
    /// Platform label.
    pub platform: String,
    /// Backend label.
    pub fabric: String,
    /// Calibration label (`"-"` for backends without one).
    pub calibration: String,
    /// Noise-axis label.
    pub noise: String,
}

/// Aggregated makespan statistics of one cell.
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Which cell.
    pub key: CellKey,
    /// Makespan order statistics over the cell's replications.
    pub makespan: Distribution,
}

/// Scalar outcome of one scenario (everything the table line and the
/// aggregation need; full run reports are dropped immediately).
#[derive(Debug, Clone, Copy)]
struct Outcome {
    cell: usize,
    makespan: f64,
    simcalls: u64,
    wall_s: f64,
    peak_bytes: u64,
}

/// End-of-sweep report: throughput, per-worker stats, per-cell summaries.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Total scenarios executed.
    pub scenarios: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Master seed the sweep ran under.
    pub seed: u64,
    /// Wall-clock seconds for the whole sweep (host-dependent).
    pub wall_s: f64,
    /// Scenario throughput (host-dependent).
    pub scenarios_per_s: f64,
    /// Largest reorder-buffer occupancy the emitter ever saw (a direct
    /// measure of the bounded streaming memory).
    pub reorder_high_water: usize,
    /// Per-worker execution counters.
    pub stats: SweepStats,
    /// Per-cell makespan distributions, in stable cell order.
    pub cells: Vec<CellSummary>,
}

impl SweepReport {
    /// Zeroes every host-dependent field (sweep wall-clock, throughput,
    /// per-worker busy time) so reports from different machines — or
    /// different worker counts on one machine — serialize identically
    /// apart from `workers` and the per-worker scenario split.
    pub fn strip_wallclock(&mut self) {
        self.wall_s = 0.0;
        self.scenarios_per_s = 0.0;
        self.stats.strip_wallclock();
    }
}

impl smpi_obs::Deterministic for SweepReport {
    fn strip_nondeterminism(&mut self) {
        self.strip_wallclock();
    }
}

impl SweepReport {
    /// Serializes the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("scenarios").uint_val(self.scenarios as u64);
        j.key("workers").uint_val(self.workers as u64);
        j.key("seed").uint_val(self.seed);
        j.key("wall_s").num_val(self.wall_s);
        j.key("scenarios_per_s").num_val(self.scenarios_per_s);
        j.key("reorder_high_water")
            .uint_val(self.reorder_high_water as u64);
        j.key("worker_stats");
        self.stats.append_json(&mut j);
        j.key("cells").begin_arr();
        for c in &self.cells {
            j.begin_obj();
            j.key("program").str_val(&c.key.program);
            j.key("platform").str_val(&c.key.platform);
            j.key("fabric").str_val(&c.key.fabric);
            j.key("calibration").str_val(&c.key.calibration);
            j.key("noise").str_val(&c.key.noise);
            j.key("makespan");
            c.makespan.append_json(&mut j);
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }

    /// Renders the per-cell distribution table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:<10} {:<8} {:<16} {:<10} {:>4} {:>12} {:>12} {:>12} {:>12}\n",
            "program",
            "platform",
            "fabric",
            "calibration",
            "noise",
            "n",
            "min",
            "median",
            "p95",
            "max"
        ));
        for c in &self.cells {
            let d = &c.makespan;
            out.push_str(&format!(
                "{:<10} {:<10} {:<8} {:<16} {:<10} {:>4} {:>12.6} {:>12.6} {:>12.6} {:>12.6}\n",
                c.key.program,
                c.key.platform,
                c.key.fabric,
                c.key.calibration,
                c.key.noise,
                d.n,
                d.min,
                d.median,
                d.p95,
                d.max
            ));
        }
        out
    }
}

impl SweepConfig {
    fn validate(&self) -> Result<(), String> {
        if self.programs.is_empty() {
            return Err("sweep needs at least one program".into());
        }
        if self.platforms.is_empty() {
            return Err("sweep needs at least one platform".into());
        }
        if self.fabrics.is_empty() {
            return Err("sweep needs at least one fabric".into());
        }
        if self.noises.is_empty() {
            return Err("sweep needs at least one noise axis".into());
        }
        if self.workers == 0 {
            return Err("sweep needs at least one worker".into());
        }
        let has_surf = self
            .fabrics
            .iter()
            .any(|(_, f)| matches!(f, FabricKind::Surf { .. }));
        if has_surf && self.calibrations.is_empty() {
            return Err("a surf fabric needs at least one calibration".into());
        }
        for axis in &self.noises {
            axis.model
                .validate()
                .map_err(|e| format!("noise axis '{}': {e}", axis.name))?;
            if axis.replications == 0 {
                return Err(format!("noise axis '{}' has zero replications", axis.name));
            }
        }
        Ok(())
    }

    /// Enumerates the matrix in stable lexicographic order: program →
    /// platform → fabric → calibration → noise → replication. Scenario ids
    /// are the positions in this order, independent of workers/seed — the
    /// streamed table is sorted by them.
    fn enumerate(&self) -> (Vec<ScenarioSpec>, Vec<CellKey>) {
        let mut scenarios = Vec::new();
        let mut cells = Vec::new();
        for (pi, prog) in self.programs.iter().enumerate() {
            for (li, (plat_name, _)) in self.platforms.iter().enumerate() {
                for (fi, (fab_name, fabric)) in self.fabrics.iter().enumerate() {
                    // The packet substrate has no calibration axis: one
                    // pseudo-entry labeled "-" instead of |calibrations|
                    // duplicate cells.
                    let cals: Vec<(Option<usize>, &str)> = match fabric {
                        FabricKind::Surf { .. } => self
                            .calibrations
                            .iter()
                            .enumerate()
                            .map(|(ci, (name, _))| (Some(ci), name.as_str()))
                            .collect(),
                        FabricKind::Packet { .. } => vec![(None, "-")],
                    };
                    for (cal, cal_name) in cals {
                        for (ni, axis) in self.noises.iter().enumerate() {
                            let cell = cells.len();
                            cells.push(CellKey {
                                program: prog.name.clone(),
                                platform: plat_name.clone(),
                                fabric: fab_name.clone(),
                                calibration: cal_name.to_string(),
                                noise: axis.name.clone(),
                            });
                            for rep in 0..axis.replications {
                                scenarios.push(ScenarioSpec {
                                    cell,
                                    program: pi,
                                    platform: li,
                                    fabric: fi,
                                    cal,
                                    noise: ni,
                                    rep,
                                });
                            }
                        }
                    }
                }
            }
        }
        (scenarios, cells)
    }

    /// Number of scenarios the matrix expands to.
    pub fn scenario_count(&self) -> usize {
        self.enumerate().0.len()
    }
}

/// The perturbation stream of `(seed, platform, noise axis, replication)`.
///
/// Deliberately *not* keyed by program, fabric or calibration: cells that
/// differ only in those axes draw identical perturbations (common random
/// numbers), so their per-replication comparison is paired.
fn scenario_rng(seed: u64, platform: usize, noise: usize, rep: u32) -> CbRng {
    CbRng::new(seed)
        .stream(platform as u64)
        .stream(noise as u64)
        .stream(rep as u64)
}

fn run_scenario(cfg: &SweepConfig, sc: &ScenarioSpec) -> Outcome {
    let (_, rp) = &cfg.platforms[sc.platform];
    let (backend, profile) = match &cfg.fabrics[sc.fabric].1 {
        FabricKind::Surf { engine, profile } => {
            let model = cfg.calibrations[sc.cal.expect("surf scenario has a calibration")]
                .1
                .clone();
            (
                Backend::Surf {
                    model,
                    engine: engine.clone(),
                },
                profile.clone(),
            )
        }
        FabricKind::Packet { config, profile } => {
            (Backend::Packet { config: *config }, profile.clone())
        }
    };
    let mut world = World::new(Arc::clone(rp), backend, profile);
    let axis = &cfg.noises[sc.noise];
    if !axis.model.is_zero() {
        let rng = scenario_rng(cfg.seed, sc.platform, sc.noise, sc.rep);
        world = world.perturbation(Arc::new(axis.model.sample(rp.platform(), &rng)));
    }
    let report: RunReport<()> = match &cfg.programs[sc.program].workload {
        Workload::Trace(trace) => smpi_replay::replay_shared(&world, Arc::clone(trace)),
        Workload::Stream(reader) => smpi_replay::replay_stream(&world, Arc::clone(reader)),
        Workload::Online { ranks, body } => {
            let body = Arc::clone(body);
            world.run(*ranks, move |ctx| body(ctx))
        }
    };
    Outcome {
        cell: sc.cell,
        makespan: report.sim_time,
        simcalls: report.profile.simcalls,
        wall_s: report.wall.as_secs_f64(),
        peak_bytes: report.memory.peak_bytes,
    }
}

fn render_line(
    cfg: &SweepConfig,
    cells: &[CellKey],
    id: usize,
    sc: &ScenarioSpec,
    out: &Outcome,
) -> String {
    let key = &cells[sc.cell];
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("scenario").uint_val(id as u64);
    j.key("cell").uint_val(sc.cell as u64);
    j.key("program").str_val(&key.program);
    j.key("platform").str_val(&key.platform);
    j.key("fabric").str_val(&key.fabric);
    j.key("calibration").str_val(&key.calibration);
    j.key("noise").str_val(&key.noise);
    j.key("rep").uint_val(sc.rep as u64);
    j.key("makespan").num_val(out.makespan);
    j.key("simcalls").uint_val(out.simcalls);
    // Host-dependent fields follow the strip_wallclock discipline: zeroed
    // under strip_hostdep so the streamed table is machine-portable.
    let (wall_s, peak) = if cfg.strip_hostdep {
        (0.0, 0)
    } else {
        (out.wall_s, out.peak_bytes)
    };
    j.key("wall_s").num_val(wall_s);
    j.key("peak_bytes").uint_val(peak);
    j.end_obj();
    j.finish()
}

/// State shared between workers: the reorder-buffered sink plus the
/// outcome store the aggregation pass reads.
struct SharedEmit<W: Write> {
    emitter: OrderedEmitter<W>,
    outcomes: Vec<Option<Outcome>>,
    io_err: Option<io::Error>,
}

/// Runs the whole matrix, streaming one JSON line per finished scenario to
/// `sink` (in stable scenario-id order regardless of completion order) and
/// returning the aggregated report.
///
/// Determinism contract: for a fixed config (matrix + seed), the bytes
/// written to `sink` and every `cells` distribution are identical for any
/// `workers` value. Host-dependent fields (`wall_s`, `scenarios_per_s`,
/// per-worker `busy_s`, and the per-line wall/memory fields unless
/// `strip_hostdep` is off) are the only exceptions, and
/// [`SweepReport::strip_wallclock`] zeroes the report-level ones.
pub fn run_sweep<W: Write + Send>(cfg: &SweepConfig, sink: W) -> io::Result<(SweepReport, W)> {
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid sweep config: {e}"));
    let (scenarios, cells) = cfg.enumerate();
    let n = scenarios.len();
    let pool = StealPool::new(cfg.workers, n);
    let shared = Mutex::new(SharedEmit {
        emitter: OrderedEmitter::new(sink),
        outcomes: vec![None; n],
        io_err: None,
    });

    let start = Instant::now();
    let joined: Vec<std::thread::Result<WorkerStats>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|w| {
                let pool = &pool;
                let shared = &shared;
                let scenarios = &scenarios;
                let cells = &cells;
                s.spawn(move || {
                    let mut stats = WorkerStats::default();
                    while let Some(job) = pool.pop(w) {
                        let sc = &scenarios[job.id];
                        let t0 = Instant::now();
                        let out = run_scenario(cfg, sc);
                        stats.busy_s += t0.elapsed().as_secs_f64();
                        stats.scenarios += 1;
                        if job.stolen {
                            stats.stolen += 1;
                        }
                        let line = render_line(cfg, cells, job.id, sc, &out);
                        let mut sh = shared.lock().unwrap();
                        sh.outcomes[job.id] = Some(out);
                        if sh.io_err.is_none() {
                            if let Err(e) = sh.emitter.push(job.id, line) {
                                sh.io_err = Some(e);
                            }
                        }
                    }
                    stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let wall_s = start.elapsed().as_secs_f64();

    // A panicking worker poisons the mutex; the survivors' results inside
    // are still sound.
    let sh = shared
        .into_inner()
        .unwrap_or_else(|poison| poison.into_inner());
    let panicked = joined.iter().filter(|r| r.is_err()).count();
    if panicked > 0 {
        // Flush every buffered in-order result, marking each hole with an
        // explicit gap record, so the JSON-lines stream stays usable and
        // self-describing instead of silently truncating at the gap.
        sh.emitter.abort()?;
        return Err(io::Error::other(format!(
            "{panicked} sweep worker(s) panicked; partial results flushed with sweep-gap records"
        )));
    }
    let worker_stats: Vec<WorkerStats> = joined
        .into_iter()
        .map(|r| r.expect("checked above"))
        .collect();
    if let Some(e) = sh.io_err {
        return Err(e);
    }
    let reorder_high_water = sh.emitter.high_water();
    let sink = sh.emitter.finish()?;

    // Aggregation: outcomes are stored by scenario id, and a cell's
    // scenarios are contiguous in id order — fold them per cell.
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); cells.len()];
    for out in sh.outcomes.iter() {
        let out = out.expect("every scenario ran");
        samples[out.cell].push(out.makespan);
    }
    let summaries = cells
        .into_iter()
        .zip(samples)
        .map(|(key, s)| CellSummary {
            key,
            makespan: Distribution::from_samples(&s),
        })
        .collect();

    Ok((
        SweepReport {
            scenarios: n,
            workers: cfg.workers,
            seed: cfg.seed,
            wall_s,
            scenarios_per_s: if wall_s > 0.0 { n as f64 / wall_s } else { 0.0 },
            reorder_high_water,
            stats: SweepStats {
                workers: worker_stats,
            },
            cells: summaries,
        },
        sink,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpi_platform::{flat_cluster, ClusterConfig};

    fn tiny_platform(name: &str, hosts: usize) -> (String, Arc<RoutedPlatform>) {
        (
            name.to_string(),
            Arc::new(RoutedPlatform::new(flat_cluster(
                name,
                hosts,
                &ClusterConfig::default(),
            ))),
        )
    }

    fn capture_ring(rp: &Arc<RoutedPlatform>) -> Arc<TiTrace> {
        let world = World::smpi(Arc::clone(rp), TransferModel::default_affine()).capture(true);
        let report = world.run(4, |ctx| {
            ctx.compute(1e5 * (ctx.rank() + 1) as f64);
            let right = (ctx.rank() + 1) % ctx.size();
            let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
            let mut buf = vec![0.0f64; 1024];
            let data = vec![ctx.rank() as f64; 1024];
            ctx.sendrecv(&data, right, 3, &mut buf, left as i32, 3, &ctx.world());
        });
        Arc::new(report.ti_trace.unwrap())
    }

    fn small_config() -> SweepConfig {
        let plat = tiny_platform("p0", 4);
        let trace = capture_ring(&plat.1);
        SweepConfig {
            programs: vec![Program::trace("ring", trace)],
            platforms: vec![plat, tiny_platform("p1", 8)],
            fabrics: vec![
                ("surf".into(), FabricKind::surf()),
                ("packet".into(), FabricKind::packet()),
            ],
            calibrations: vec![
                ("affine".into(), TransferModel::default_affine()),
                ("affine-2".into(), TransferModel::affine(1.5, 0.8)),
            ],
            noises: vec![NoiseAxis::none(), NoiseAxis::jitter("j10", 0.1, 3)],
            workers: 2,
            seed: 7,
            strip_hostdep: true,
        }
    }

    #[test]
    fn matrix_enumeration_dedups_packet_calibrations() {
        let cfg = small_config();
        // 1 program × 2 platforms × (surf × 2 cals + packet × 1) × 2 noise
        // axes = 12 cells; scenarios = cells × (1 + 3) / 2 noise split.
        let (scenarios, cells) = cfg.enumerate();
        assert_eq!(cells.len(), 12);
        // Per (platform, fabric-cal) group: none → 1, j10 → 3.
        assert_eq!(scenarios.len(), 2 * 3 * (1 + 3));
        // Ids are strictly increasing cell-contiguous.
        for w in scenarios.windows(2) {
            assert!(w[1].cell >= w[0].cell);
        }
        assert_eq!(cfg.scenario_count(), scenarios.len());
    }

    #[test]
    fn sweep_runs_and_aggregates() {
        let cfg = small_config();
        let (report, lines) = run_sweep(&cfg, Vec::new()).unwrap();
        assert_eq!(report.scenarios, 24);
        assert_eq!(report.stats.total_scenarios(), 24);
        assert_eq!(report.cells.len(), 12);
        let text = String::from_utf8(lines).unwrap();
        assert_eq!(text.lines().count(), 24);
        // Lines are in scenario-id order.
        for (i, line) in text.lines().enumerate() {
            assert!(line.starts_with(&format!("{{\"scenario\":{i},")), "{line}");
        }
        // Every cell distribution has the right replication count.
        for c in &report.cells {
            let expect = if c.key.noise == "none" { 1 } else { 3 };
            assert_eq!(c.makespan.n, expect, "{:?}", c.key);
        }
        // Noise actually spreads the distribution on at least one cell.
        assert!(report
            .cells
            .iter()
            .any(|c| c.key.noise == "j10" && c.makespan.max > c.makespan.min));
        // Render and JSON don't panic and mention a cell.
        assert!(report.render().contains("ring"));
        assert!(report.to_json().contains("\"cells\""));
    }

    #[test]
    fn stream_fed_sweep_is_byte_identical_to_trace_fed() {
        // Feeding workers from the shared TITRACE2 block decoder must not
        // change a single output byte relative to the in-memory trace path.
        let cfg = small_config();
        let trace = match &cfg.programs[0].workload {
            Workload::Trace(t) => Arc::clone(t),
            _ => unreachable!("small_config is trace-fed"),
        };
        // Per-process path: concurrent test invocations must not race on
        // the capture file.
        let dir =
            std::env::temp_dir().join(format!("smpi_sweep_stream_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring.tit2");
        smpi_replay::save_trace_v2(&path, &trace).unwrap();
        let reader = Arc::new(smpi::TiV2Reader::open(&path).unwrap());

        let mut stream_cfg = cfg.clone();
        stream_cfg.programs = vec![Program::stream("ring", Arc::clone(&reader))];

        let (mut report_t, lines_t) = run_sweep(&cfg, Vec::new()).unwrap();
        let (mut report_s, lines_s) = run_sweep(&stream_cfg, Vec::new()).unwrap();
        assert_eq!(lines_t, lines_s, "scenario lines diverge");
        report_t.strip_wallclock();
        report_s.strip_wallclock();
        assert_eq!(report_t.to_json(), report_s.to_json());
        // The decoder was shared: blocks decoded at most once per residency
        // window, far fewer times than scenarios replayed.
        let stats = reader.stats();
        assert!(stats.blocks_decoded + stats.cache_hits > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn online_workloads_sweep_too() {
        let plat = tiny_platform("p0", 4);
        let cfg = SweepConfig {
            programs: vec![Program::online("allred", 4, |ctx| {
                let x = [ctx.rank() as f64];
                ctx.allreduce(&x, &smpi::op::sum::<f64>(), &ctx.world());
            })],
            platforms: vec![plat],
            fabrics: vec![("surf".into(), FabricKind::surf())],
            calibrations: vec![("affine".into(), TransferModel::default_affine())],
            noises: vec![NoiseAxis::none()],
            workers: 2,
            seed: 0,
            strip_hostdep: true,
        };
        let (report, _) = run_sweep(&cfg, Vec::new()).unwrap();
        assert_eq!(report.scenarios, 1);
        assert!(report.cells[0].makespan.min > 0.0);
    }

    #[test]
    fn worker_panic_surfaces_gap_and_flushes_tail() {
        use std::sync::Mutex;
        #[derive(Clone, Debug)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let plat = tiny_platform("p0", 4);
        let trace = capture_ring(&plat.1);
        let cfg = SweepConfig {
            programs: vec![
                // Scenario 0: the rank body panics, killing its worker.
                Program::online("boom", 2, |_ctx| panic!("injected failure")),
                Program::trace("ring", trace),
            ],
            platforms: vec![plat],
            fabrics: vec![("surf".into(), FabricKind::surf())],
            calibrations: vec![("affine".into(), TransferModel::default_affine())],
            noises: vec![NoiseAxis::none()],
            workers: 2,
            seed: 7,
            strip_hostdep: true,
        };
        let store = Arc::new(Mutex::new(Vec::new()));
        let err = run_sweep(&cfg, Shared(Arc::clone(&store)))
            .expect_err("a dead worker must fail the sweep");
        assert!(err.to_string().contains("panicked"), "{err}");
        // The surviving scenario was flushed behind an explicit gap record
        // instead of being silently dropped with the reorder buffer.
        let text = String::from_utf8(store.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "stream: {text}");
        assert!(lines[0].contains("\"type\":\"sweep-gap\""), "{}", lines[0]);
        assert!(lines[0].contains("\"missing_from\":0"), "{}", lines[0]);
        assert!(lines[0].contains("\"missing_to\":0"), "{}", lines[0]);
        assert!(lines[1].contains("\"scenario\":1"), "{}", lines[1]);
        assert!(lines[1].contains("\"program\":\"ring\""), "{}", lines[1]);
    }

    #[test]
    #[should_panic(expected = "needs at least one calibration")]
    fn surf_without_calibration_is_rejected() {
        let plat = tiny_platform("p0", 2);
        let trace = capture_ring(&tiny_platform("c", 4).1);
        let cfg = SweepConfig {
            programs: vec![Program::trace("ring", trace)],
            platforms: vec![plat],
            fabrics: vec![("surf".into(), FabricKind::surf())],
            calibrations: vec![],
            noises: vec![NoiseAxis::none()],
            ..Default::default()
        };
        let _ = run_sweep(&cfg, Vec::new());
    }
}
