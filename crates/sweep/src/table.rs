//! Streamed, ordered results and per-cell distribution summaries.
//!
//! Workers finish scenarios in a scheduling-dependent order, but the
//! results table must be identical for any worker count. The
//! [`OrderedEmitter`] is a reorder buffer: lines are pushed keyed by
//! scenario id and written to the sink the moment the next consecutive id
//! is available. Memory is bounded by the completion skew between workers
//! (at most "jobs in flight + buffered out-of-order lines"), never by the
//! sweep size — the table streams.
//!
//! [`Distribution`] is the aggregation half: order statistics of a cell's
//! makespan samples via the nearest-rank method (no interpolation — the
//! reported quantiles are actual samples, which keeps them byte-stable
//! under formatting).

use std::collections::BTreeMap;
use std::io::Write;

use smpi_obs::json::JsonBuf;

/// Order statistics of one matrix cell's makespan samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    /// Sample count.
    pub n: usize,
    /// Smallest sample.
    pub min: f64,
    /// Nearest-rank median.
    pub median: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Distribution {
    /// Summarizes `samples` (must be non-empty; order irrelevant).
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "distribution over zero samples");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite makespans"));
        let nearest_rank = |q: f64| -> f64 {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Distribution {
            n: sorted.len(),
            min: sorted[0],
            median: nearest_rank(0.50),
            p95: nearest_rank(0.95),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }

    /// Appends this summary as a JSON object value.
    pub fn append_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        j.key("n").uint_val(self.n as u64);
        j.key("min").num_val(self.min);
        j.key("median").num_val(self.median);
        j.key("p95").num_val(self.p95);
        j.key("max").num_val(self.max);
        j.key("mean").num_val(self.mean);
        j.end_obj();
    }
}

/// Reorder buffer turning out-of-order completions into an id-ordered
/// stream of lines.
pub struct OrderedEmitter<W: Write> {
    sink: W,
    next: usize,
    pending: BTreeMap<usize, String>,
    high_water: usize,
}

impl<W: Write> OrderedEmitter<W> {
    /// Creates an emitter over `sink`, expecting ids `0, 1, 2, …`.
    pub fn new(sink: W) -> Self {
        OrderedEmitter {
            sink,
            next: 0,
            pending: BTreeMap::new(),
            high_water: 0,
        }
    }

    /// Submits the line of scenario `id` (no trailing newline). Writes it —
    /// and any buffered successors it unblocks — if `id` is the next
    /// consecutive id; buffers it otherwise.
    pub fn push(&mut self, id: usize, line: String) -> std::io::Result<()> {
        assert!(id >= self.next, "scenario {id} emitted twice");
        self.pending.insert(id, line);
        self.high_water = self.high_water.max(self.pending.len());
        while let Some(line) = self.pending.remove(&self.next) {
            self.sink.write_all(line.as_bytes())?;
            self.sink.write_all(b"\n")?;
            self.next += 1;
        }
        Ok(())
    }

    /// Largest number of lines ever buffered (the reorder-buffer footprint).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Flushes and returns the sink. Panics if lines are still buffered
    /// (a gap in the id sequence was never filled).
    pub fn finish(mut self) -> std::io::Result<W> {
        assert!(
            self.pending.is_empty(),
            "emitter finished with {} lines stuck behind missing id {}",
            self.pending.len(),
            self.next
        );
        self.sink.flush()?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_of_known_samples() {
        let d = Distribution::from_samples(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        assert_eq!(d.n, 5);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.p95, 5.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.mean, 3.0);
    }

    #[test]
    fn single_sample_collapses() {
        let d = Distribution::from_samples(&[2.5]);
        assert_eq!(
            (d.min, d.median, d.p95, d.max, d.mean),
            (2.5, 2.5, 2.5, 2.5, 2.5)
        );
    }

    #[test]
    fn nearest_rank_p95_on_twenty_samples() {
        let samples: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let d = Distribution::from_samples(&samples);
        assert_eq!(d.p95, 19.0); // ceil(0.95 * 20) = 19th of 20
        assert_eq!(d.median, 10.0); // ceil(0.5 * 20) = 10th
    }

    #[test]
    fn emitter_reorders_by_id() {
        let mut em = OrderedEmitter::new(Vec::new());
        em.push(2, "c".into()).unwrap();
        em.push(0, "a".into()).unwrap();
        em.push(1, "b".into()).unwrap();
        em.push(3, "d".into()).unwrap();
        assert_eq!(em.high_water(), 2);
        let out = em.finish().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "a\nb\nc\nd\n");
    }

    #[test]
    #[should_panic(expected = "stuck behind missing id")]
    fn emitter_detects_gaps() {
        let mut em = OrderedEmitter::new(Vec::new());
        em.push(1, "b".into()).unwrap();
        let _ = em.finish();
    }
}
