//! Streamed, ordered results and per-cell distribution summaries.
//!
//! Workers finish scenarios in a scheduling-dependent order, but the
//! results table must be identical for any worker count. The
//! [`OrderedEmitter`] is a reorder buffer: lines are pushed keyed by
//! scenario id and written to the sink the moment the next consecutive id
//! is available. Memory is bounded by the completion skew between workers
//! (at most "jobs in flight + buffered out-of-order lines"), never by the
//! sweep size — the table streams.
//!
//! [`Distribution`] is the aggregation half: order statistics of a cell's
//! makespan samples via the nearest-rank method (no interpolation — the
//! reported quantiles are actual samples, which keeps them byte-stable
//! under formatting).

use std::collections::BTreeMap;
use std::io::Write;

use smpi_obs::json::JsonBuf;

/// Order statistics of one matrix cell's makespan samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    /// Sample count.
    pub n: usize,
    /// Smallest sample.
    pub min: f64,
    /// Nearest-rank median.
    pub median: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Distribution {
    /// Summarizes `samples` (must be non-empty; order irrelevant).
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "distribution over zero samples");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite makespans"));
        let nearest_rank = |q: f64| -> f64 {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Distribution {
            n: sorted.len(),
            min: sorted[0],
            median: nearest_rank(0.50),
            p95: nearest_rank(0.95),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }

    /// Appends this summary as a JSON object value.
    pub fn append_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        j.key("n").uint_val(self.n as u64);
        j.key("min").num_val(self.min);
        j.key("median").num_val(self.median);
        j.key("p95").num_val(self.p95);
        j.key("max").num_val(self.max);
        j.key("mean").num_val(self.mean);
        j.end_obj();
    }
}

/// The explicit error record written into the JSON-lines stream where
/// scenarios `from..=to` should have been: a worker died before emitting
/// them, and a silent hole would corrupt downstream id-based joins.
fn gap_record(from: usize, to: usize) -> String {
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("type").str_val("sweep-gap");
    j.key("missing_from").uint_val(from as u64);
    j.key("missing_to").uint_val(to as u64);
    j.key("error")
        .str_val("worker died before these scenarios completed");
    j.end_obj();
    j.finish()
}

/// Reorder buffer turning out-of-order completions into an id-ordered
/// stream of lines.
///
/// If the emitter is dropped (or [`abort`](Self::abort)ed) while lines are
/// still buffered behind a missing id — a worker panicked mid-sweep — the
/// buffered tail is flushed in id order with an explicit gap-record line
/// marking each hole, instead of being silently discarded.
pub struct OrderedEmitter<W: Write> {
    /// `None` only after `finish`/`abort` moved the sink out.
    sink: Option<W>,
    next: usize,
    pending: BTreeMap<usize, String>,
    high_water: usize,
}

impl<W: Write> OrderedEmitter<W> {
    /// Creates an emitter over `sink`, expecting ids `0, 1, 2, …`.
    pub fn new(sink: W) -> Self {
        OrderedEmitter {
            sink: Some(sink),
            next: 0,
            pending: BTreeMap::new(),
            high_water: 0,
        }
    }

    /// Submits the line of scenario `id` (no trailing newline). Writes it —
    /// and any buffered successors it unblocks — if `id` is the next
    /// consecutive id; buffers it otherwise.
    pub fn push(&mut self, id: usize, line: String) -> std::io::Result<()> {
        assert!(id >= self.next, "scenario {id} emitted twice");
        self.pending.insert(id, line);
        self.high_water = self.high_water.max(self.pending.len());
        let sink = self.sink.as_mut().expect("emitter already finished");
        while let Some(line) = self.pending.remove(&self.next) {
            sink.write_all(line.as_bytes())?;
            sink.write_all(b"\n")?;
            self.next += 1;
        }
        Ok(())
    }

    /// Largest number of lines ever buffered (the reorder-buffer footprint).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Writes every still-buffered line in id order, preceding each id
    /// discontinuity with a [`gap_record`] error line.
    fn flush_with_gaps(&mut self) -> std::io::Result<()> {
        let pending = std::mem::take(&mut self.pending);
        let sink = self.sink.as_mut().expect("emitter already finished");
        let mut expected = self.next;
        for (id, line) in pending {
            if id != expected {
                sink.write_all(gap_record(expected, id - 1).as_bytes())?;
                sink.write_all(b"\n")?;
            }
            sink.write_all(line.as_bytes())?;
            sink.write_all(b"\n")?;
            expected = id + 1;
        }
        self.next = expected;
        sink.flush()
    }

    /// Flushes and returns the sink. Panics if lines are still buffered
    /// (a gap in the id sequence was never filled); the panic still leaves
    /// a complete stream behind — the drop flush writes the tail with gap
    /// records.
    pub fn finish(mut self) -> std::io::Result<W> {
        assert!(
            self.pending.is_empty(),
            "emitter finished with {} lines stuck behind missing id {}",
            self.pending.len(),
            self.next
        );
        let mut sink = self.sink.take().expect("emitter already finished");
        sink.flush()?;
        Ok(sink)
    }

    /// Aborts the stream after a worker failure: flushes the buffered tail
    /// with explicit gap records and returns the sink.
    pub fn abort(mut self) -> std::io::Result<W> {
        self.flush_with_gaps()?;
        Ok(self.sink.take().expect("emitter already finished"))
    }
}

impl<W: Write> Drop for OrderedEmitter<W> {
    fn drop(&mut self) {
        // Unwind path (e.g. a panicking sweep worker poisons the shared
        // state and the emitter drops mid-flight): the buffered tail must
        // reach the sink rather than vanish. Errors are ignored — this is
        // best-effort salvage during teardown.
        if self.sink.is_some() && !self.pending.is_empty() {
            let _ = self.flush_with_gaps();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_of_known_samples() {
        let d = Distribution::from_samples(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        assert_eq!(d.n, 5);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.p95, 5.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.mean, 3.0);
    }

    #[test]
    fn single_sample_collapses() {
        let d = Distribution::from_samples(&[2.5]);
        assert_eq!(
            (d.min, d.median, d.p95, d.max, d.mean),
            (2.5, 2.5, 2.5, 2.5, 2.5)
        );
    }

    #[test]
    fn nearest_rank_p95_on_twenty_samples() {
        let samples: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let d = Distribution::from_samples(&samples);
        assert_eq!(d.p95, 19.0); // ceil(0.95 * 20) = 19th of 20
        assert_eq!(d.median, 10.0); // ceil(0.5 * 20) = 10th
    }

    #[test]
    fn emitter_reorders_by_id() {
        let mut em = OrderedEmitter::new(Vec::new());
        em.push(2, "c".into()).unwrap();
        em.push(0, "a".into()).unwrap();
        em.push(1, "b".into()).unwrap();
        em.push(3, "d".into()).unwrap();
        assert_eq!(em.high_water(), 2);
        let out = em.finish().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "a\nb\nc\nd\n");
    }

    #[test]
    #[should_panic(expected = "stuck behind missing id")]
    fn emitter_detects_gaps() {
        let mut em = OrderedEmitter::new(Vec::new());
        em.push(1, "b".into()).unwrap();
        let _ = em.finish();
    }

    #[test]
    fn abort_flushes_tail_with_gap_records() {
        let mut em = OrderedEmitter::new(Vec::new());
        em.push(0, "a".into()).unwrap();
        // Ids 1 and 4 never arrive (their workers died).
        em.push(2, "c".into()).unwrap();
        em.push(3, "d".into()).unwrap();
        em.push(5, "f".into()).unwrap();
        let out = em.abort().unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a");
        assert!(lines[1].contains("\"type\":\"sweep-gap\""), "{}", lines[1]);
        assert!(lines[1].contains("\"missing_from\":1"), "{}", lines[1]);
        assert!(lines[1].contains("\"missing_to\":1"), "{}", lines[1]);
        assert_eq!(&lines[2..4], &["c", "d"]);
        assert!(lines[4].contains("\"missing_from\":4"), "{}", lines[4]);
        assert_eq!(lines[5], "f");
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn drop_flushes_tail_through_a_shared_sink() {
        use std::sync::{Arc, Mutex};
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let store = Arc::new(Mutex::new(Vec::new()));
        {
            let mut em = OrderedEmitter::new(Shared(Arc::clone(&store)));
            em.push(1, "b".into()).unwrap();
            em.push(2, "c".into()).unwrap();
            // Dropped with id 0 missing: the tail must still land.
        }
        let text = String::from_utf8(store.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"missing_from\":0"), "{}", lines[0]);
        assert_eq!(&lines[1..], &["b", "c"]);
    }
}
