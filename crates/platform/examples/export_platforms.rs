//! Writes the paper's platform files to `platforms/` as XML.
//!
//! ```text
//! cargo run -p smpi-platform --example export_platforms
//! ```

fn main() {
    let out = std::path::Path::new("platforms");
    std::fs::create_dir_all(out).expect("create platforms dir");
    for (name, p) in [
        ("griffon", smpi_platform::griffon()),
        ("gdx", smpi_platform::gdx()),
    ] {
        let xml = smpi_platform::to_xml(&p);
        let path = out.join(format!("{name}.xml"));
        std::fs::write(&path, xml).expect("write platform file");
        println!("wrote {} ({} hosts)", path.display(), p.num_hosts());
    }
}
