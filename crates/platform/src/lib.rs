//! # smpi-platform — target platform descriptions
//!
//! Implements §6 of the SMPI paper: hosts, switches, links, routes, cluster
//! builders for the paper's griffon and gdx testbeds, and a SimGrid-style
//! XML platform format. The same description feeds both the flow-level SURF
//! kernel (via [`surf_bridge`]) and the packet-level ground-truth simulator,
//! so accuracy comparisons always run on identical hardware models.

pub mod cluster;
pub mod perturb;
pub mod routing;
pub mod spec;
pub mod surf_bridge;
pub mod units;
pub mod xml;

pub use cluster::{flat_cluster, gdx, griffon, hierarchical_cluster, ClusterConfig};
pub use perturb::PlatformPerturbation;
pub use routing::{RoutedPlatform, Routes};
pub use spec::{Edge, HostIx, Link, LinkIx, Node, NodeIx, NodeKind, Platform, SharingPolicy};
pub use surf_bridge::{Materialized, PlatformImage};
pub use xml::{from_xml, to_xml, XmlError};
