//! Platform files: a SimGrid-flavoured XML subset (paper §6).
//!
//! An SMPI simulation takes its target platform from an XML description.
//! This module implements a small, dependency-free parser and writer for the
//! subset needed here:
//!
//! ```xml
//! <?xml version="1.0"?>
//! <platform version="4">
//!   <host id="node-0" speed="2.5Gf"/>
//!   <switch id="cab0"/>
//!   <link id="l0" bandwidth="125MBps" latency="50us" sharing_policy="SHARED"/>
//!   <edge a="node-0" b="cab0" link="l0"/>
//!   <route src="node-0" dst="node-1">
//!     <link_ctn id="l0"/><link_ctn id="l1"/>
//!   </route>
//! </platform>
//! ```
//!
//! `<edge>` declares topology (shortest-path routing applies); `<route>`
//! declares an explicit host-to-host route that overrides routing, exactly
//! like SimGrid's `<route>` elements.

use std::collections::HashMap;

use crate::spec::{Platform, SharingPolicy};
use crate::units::{
    format_bandwidth, format_latency, format_speed, parse_bandwidth, parse_latency, parse_speed,
};

/// Error from parsing a platform file.
#[derive(Debug, Clone, PartialEq)]
pub struct XmlError {
    /// Human-readable description with positional context.
    pub message: String,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "platform XML error: {}", self.message)
    }
}

impl std::error::Error for XmlError {}

fn err<T>(message: impl Into<String>) -> Result<T, XmlError> {
    Err(XmlError {
        message: message.into(),
    })
}

/// One parsed XML tag.
#[derive(Debug, Clone, PartialEq)]
enum Tag {
    Open(String, HashMap<String, String>),
    SelfClosing(String, HashMap<String, String>),
    Close(String),
}

/// Tokenizes the input into tags, skipping the XML declaration, comments and
/// whitespace text. Non-whitespace text content is rejected (the platform
/// format has none).
fn tokenize(input: &str) -> Result<Vec<Tag>, XmlError> {
    let mut tags = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if bytes[i] != b'<' {
            return err(format!("unexpected text content at byte {i}"));
        }
        if input[i..].starts_with("<!--") {
            match input[i..].find("-->") {
                Some(end) => i += end + 3,
                None => return err("unterminated comment"),
            }
            continue;
        }
        if input[i..].starts_with("<?") {
            match input[i..].find("?>") {
                Some(end) => i += end + 2,
                None => return err("unterminated XML declaration"),
            }
            continue;
        }
        let close = input[i..].find('>').ok_or_else(|| XmlError {
            message: format!("unterminated tag at byte {i}"),
        })?;
        let inner = &input[i + 1..i + close];
        i += close + 1;
        if let Some(name) = inner.strip_prefix('/') {
            tags.push(Tag::Close(name.trim().to_string()));
            continue;
        }
        let (inner, self_closing) = match inner.strip_suffix('/') {
            Some(rest) => (rest, true),
            None => (inner, false),
        };
        let mut parts = inner.trim().splitn(2, char::is_whitespace);
        let name = parts.next().unwrap_or("").to_string();
        if name.is_empty() {
            return err("empty tag name");
        }
        let attrs = parse_attrs(parts.next().unwrap_or(""))?;
        if self_closing {
            tags.push(Tag::SelfClosing(name, attrs));
        } else {
            tags.push(Tag::Open(name, attrs));
        }
    }
    Ok(tags)
}

fn parse_attrs(s: &str) -> Result<HashMap<String, String>, XmlError> {
    let mut attrs = HashMap::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = match rest.find('=') {
            Some(p) => p,
            None => return err(format!("malformed attribute near {rest:?}")),
        };
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return err(format!("attribute {key:?} value must be double-quoted"));
        }
        let end = match rest[1..].find('"') {
            Some(p) => p,
            None => return err(format!("unterminated value for attribute {key:?}")),
        };
        let value = rest[1..1 + end].to_string();
        rest = rest[end + 2..].trim_start();
        if attrs.insert(key.clone(), value).is_some() {
            return err(format!("duplicate attribute {key:?}"));
        }
    }
    Ok(attrs)
}

fn require<'a>(
    attrs: &'a HashMap<String, String>,
    key: &str,
    tag: &str,
) -> Result<&'a str, XmlError> {
    attrs.get(key).map(|s| s.as_str()).ok_or_else(|| XmlError {
        message: format!("<{tag}> is missing required attribute {key:?}"),
    })
}

/// Parses a platform file.
pub fn from_xml(input: &str) -> Result<Platform, XmlError> {
    let tags = tokenize(input)?;
    let mut platform = Platform::new();
    let mut iter = tags.into_iter().peekable();

    match iter.next() {
        Some(Tag::Open(name, _)) if name == "platform" => {}
        other => return err(format!("expected <platform>, found {other:?}")),
    }

    while let Some(tag) = iter.next() {
        match tag {
            Tag::SelfClosing(name, attrs) => match name.as_str() {
                "host" => {
                    let id = require(&attrs, "id", "host")?;
                    let speed =
                        parse_speed(require(&attrs, "speed", "host")?).map_err(|e| XmlError {
                            message: e.to_string(),
                        })?;
                    platform.add_host(id, speed);
                }
                "switch" | "router" => {
                    platform.add_switch(require(&attrs, "id", "switch")?);
                }
                "link" => {
                    let id = require(&attrs, "id", "link")?;
                    let bw =
                        parse_bandwidth(require(&attrs, "bandwidth", "link")?).map_err(|e| {
                            XmlError {
                                message: e.to_string(),
                            }
                        })?;
                    let lat = parse_latency(require(&attrs, "latency", "link")?).map_err(|e| {
                        XmlError {
                            message: e.to_string(),
                        }
                    })?;
                    let policy = match attrs.get("sharing_policy").map(String::as_str) {
                        None | Some("SHARED") => SharingPolicy::Shared,
                        Some("SPLITDUPLEX") => SharingPolicy::SplitDuplex,
                        Some("FATPIPE") => SharingPolicy::FatPipe,
                        Some(other) => return err(format!("unknown sharing_policy {other:?}")),
                    };
                    platform.add_link(id, bw, lat, policy);
                }
                "edge" => {
                    let a = require(&attrs, "a", "edge")?;
                    let b = require(&attrs, "b", "edge")?;
                    let link = require(&attrs, "link", "edge")?;
                    let a = platform.node_by_name(a).ok_or_else(|| XmlError {
                        message: format!("edge endpoint {a:?} is not declared"),
                    })?;
                    let b = platform.node_by_name(b).ok_or_else(|| XmlError {
                        message: format!("edge endpoint {b:?} is not declared"),
                    })?;
                    let link = platform.link_by_name(link).ok_or_else(|| XmlError {
                        message: format!("edge link {link:?} is not declared"),
                    })?;
                    platform.connect(a, b, link);
                }
                other => return err(format!("unexpected element <{other}/>")),
            },
            Tag::Open(name, attrs) if name == "route" => {
                let src = require(&attrs, "src", "route")?.to_string();
                let dst = require(&attrs, "dst", "route")?.to_string();
                let mut links = Vec::new();
                loop {
                    match iter.next() {
                        Some(Tag::SelfClosing(n, a)) if n == "link_ctn" => {
                            let id = require(&a, "id", "link_ctn")?;
                            let l = platform.link_by_name(id).ok_or_else(|| XmlError {
                                message: format!("route references unknown link {id:?}"),
                            })?;
                            links.push(crate::spec::Hop::fwd(l));
                        }
                        Some(Tag::Close(n)) if n == "route" => break,
                        other => return err(format!("unexpected content in <route>: {other:?}")),
                    }
                }
                let src = platform.host_by_name(&src).ok_or_else(|| XmlError {
                    message: format!("route src {src:?} is not a host"),
                })?;
                let dst = platform.host_by_name(&dst).ok_or_else(|| XmlError {
                    message: format!("route dst {dst:?} is not a host"),
                })?;
                platform.add_explicit_route(src, dst, links);
            }
            Tag::Close(name) if name == "platform" => {
                if iter.peek().is_some() {
                    return err("content after </platform>");
                }
                return Ok(platform);
            }
            other => return err(format!("unexpected tag {other:?}")),
        }
    }
    err("missing </platform>")
}

/// Serializes a platform to the XML subset accepted by [`from_xml`].
pub fn to_xml(platform: &Platform) -> String {
    use crate::spec::NodeKind;
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\"?>\n<platform version=\"4\">\n");
    for node in platform.nodes() {
        match node.kind {
            NodeKind::Host { speed } => {
                out.push_str(&format!(
                    "  <host id=\"{}\" speed=\"{}\"/>\n",
                    node.name,
                    format_speed(speed)
                ));
            }
            NodeKind::Switch => {
                out.push_str(&format!("  <switch id=\"{}\"/>\n", node.name));
            }
        }
    }
    for link in platform.links() {
        let policy = match link.policy {
            SharingPolicy::Shared => "SHARED",
            SharingPolicy::SplitDuplex => "SPLITDUPLEX",
            SharingPolicy::FatPipe => "FATPIPE",
        };
        out.push_str(&format!(
            "  <link id=\"{}\" bandwidth=\"{}\" latency=\"{}\" sharing_policy=\"{}\"/>\n",
            link.name,
            format_bandwidth(link.bandwidth),
            format_latency(link.latency),
            policy
        ));
    }
    for edge in platform.edges() {
        out.push_str(&format!(
            "  <edge a=\"{}\" b=\"{}\" link=\"{}\"/>\n",
            platform.node(edge.a).name,
            platform.node(edge.b).name,
            platform.link(edge.link).name
        ));
    }
    out.push_str("</platform>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutedPlatform;
    use crate::spec::HostIx;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<!-- two hosts behind one switch -->
<platform version="4">
  <host id="h0" speed="1Gf"/>
  <host id="h1" speed="1Gf"/>
  <switch id="sw"/>
  <link id="l0" bandwidth="125MBps" latency="50us"/>
  <link id="l1" bandwidth="125MBps" latency="50us"/>
  <edge a="h0" b="sw" link="l0"/>
  <edge a="h1" b="sw" link="l1"/>
</platform>
"#;

    #[test]
    fn parses_sample() {
        let p = from_xml(SAMPLE).unwrap();
        assert_eq!(p.num_hosts(), 2);
        assert_eq!(p.num_links(), 2);
        assert_eq!(p.link(p.link_by_name("l0").unwrap()).bandwidth, 125e6);
        let rp = RoutedPlatform::new(p);
        assert_eq!(rp.route(HostIx(0), HostIx(1)).len(), 2);
    }

    #[test]
    fn explicit_routes_parse() {
        let xml = r#"<platform version="4">
  <host id="h0" speed="1Gf"/>
  <host id="h1" speed="1Gf"/>
  <link id="direct" bandwidth="1GBps" latency="1us"/>
  <route src="h0" dst="h1"><link_ctn id="direct"/></route>
</platform>"#;
        let p = from_xml(xml).unwrap();
        let rp = RoutedPlatform::new(p);
        let r = rp.route(HostIx(0), HostIx(1));
        assert_eq!(r.len(), 1);
        // And the reverse route was registered automatically.
        assert_eq!(rp.route(HostIx(1), HostIx(0)).len(), 1);
    }

    #[test]
    fn roundtrip_through_writer() {
        let p = crate::cluster::griffon();
        let xml = to_xml(&p);
        let q = from_xml(&xml).unwrap();
        assert_eq!(p.num_hosts(), q.num_hosts());
        assert_eq!(p.num_links(), q.num_links());
        assert_eq!(p.edges().len(), q.edges().len());
        // Routing must be identical on both.
        let rp = RoutedPlatform::new(p);
        let rq = RoutedPlatform::new(q);
        for (a, b) in [(0u32, 1u32), (0, 91), (40, 70)] {
            assert_eq!(
                rp.route(HostIx(a), HostIx(b)).len(),
                rq.route(HostIx(a), HostIx(b)).len()
            );
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_xml("<platform>").is_err());
        assert!(from_xml("<platform></platform><host/>").is_err());
        assert!(from_xml(r#"<platform><host id="h"/></platform>"#).is_err()); // no speed
        assert!(from_xml(r#"<platform><bogus/></platform>"#).is_err());
        assert!(from_xml("junk").is_err());
        assert!(from_xml("<platform><!-- unterminated").is_err());
    }

    #[test]
    fn rejects_unknown_sharing_policy() {
        let xml = r#"<platform>
  <link id="l" bandwidth="1MBps" latency="1us" sharing_policy="WEIRD"/>
</platform>"#;
        assert!(from_xml(xml).is_err());
    }

    #[test]
    fn fatpipe_policy_roundtrips() {
        let xml = r#"<platform>
  <link id="l" bandwidth="1MBps" latency="1us" sharing_policy="FATPIPE"/>
</platform>"#;
        let p = from_xml(xml).unwrap();
        assert_eq!(
            p.link(p.link_by_name("l").unwrap()).policy,
            SharingPolicy::FatPipe
        );
        let again = from_xml(&to_xml(&p)).unwrap();
        assert_eq!(
            again.link(again.link_by_name("l").unwrap()).policy,
            SharingPolicy::FatPipe
        );
    }
}
