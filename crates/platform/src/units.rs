//! Parsing and formatting of SimGrid-style units.
//!
//! Platform files (§6 of the paper) express link bandwidths, latencies and
//! host speeds with unit suffixes (`125MBps`, `50us`, `1Gf`). This module
//! converts between those strings and SI base values (bytes/s, seconds,
//! flop/s).

/// Error produced when a unit string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitError {
    /// The offending input.
    pub input: String,
    /// What was expected.
    pub expected: &'static str,
}

impl std::fmt::Display for UnitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot parse {:?} as {}", self.input, self.expected)
    }
}

impl std::error::Error for UnitError {}

fn split_suffix(s: &str) -> (&str, &str) {
    let trimmed = s.trim();
    let split = trimmed
        .char_indices()
        .find(|(_, c)| {
            !(c.is_ascii_digit() || *c == '.' || *c == '-' || *c == '+' || *c == 'e' || *c == 'E')
        })
        .map(|(i, _)| i)
        .unwrap_or(trimmed.len());
    // Guard against scientific notation capturing a trailing exponent letter
    // that actually starts a suffix (e.g. "1e3ms" splits at 'm').
    (&trimmed[..split], trimmed[split..].trim())
}

fn parse_value(num: &str, input: &str, expected: &'static str) -> Result<f64, UnitError> {
    num.parse::<f64>().map_err(|_| UnitError {
        input: input.to_string(),
        expected,
    })
}

/// Parses a bandwidth such as `125MBps` (bytes/s) or `1Gbps` (bits/s) into
/// bytes per second. A bare number is taken as bytes/s.
pub fn parse_bandwidth(s: &str) -> Result<f64, UnitError> {
    const EXPECTED: &str = "bandwidth (e.g. 125MBps, 1Gbps)";
    let (num, suffix) = split_suffix(s);
    let v = parse_value(num, s, EXPECTED)?;
    let factor = match suffix {
        "" | "Bps" => 1.0,
        "kBps" | "KBps" => 1e3,
        "MBps" => 1e6,
        "GBps" => 1e9,
        "bps" => 1.0 / 8.0,
        "kbps" | "Kbps" => 1e3 / 8.0,
        "Mbps" => 1e6 / 8.0,
        "Gbps" => 1e9 / 8.0,
        _ => {
            return Err(UnitError {
                input: s.to_string(),
                expected: EXPECTED,
            })
        }
    };
    Ok(v * factor)
}

/// Parses a latency such as `50us`, `1.5ms` or `2s` into seconds. A bare
/// number is taken as seconds.
pub fn parse_latency(s: &str) -> Result<f64, UnitError> {
    const EXPECTED: &str = "latency (e.g. 50us, 1ms)";
    let (num, suffix) = split_suffix(s);
    let v = parse_value(num, s, EXPECTED)?;
    let factor = match suffix {
        "" | "s" => 1.0,
        "ms" => 1e-3,
        "us" => 1e-6,
        "ns" => 1e-9,
        _ => {
            return Err(UnitError {
                input: s.to_string(),
                expected: EXPECTED,
            })
        }
    };
    Ok(v * factor)
}

/// Parses a compute speed such as `1Gf` or `2.5Gf` into flop/s. A bare
/// number is taken as flop/s.
pub fn parse_speed(s: &str) -> Result<f64, UnitError> {
    const EXPECTED: &str = "speed (e.g. 2.5Gf)";
    let (num, suffix) = split_suffix(s);
    let v = parse_value(num, s, EXPECTED)?;
    let factor = match suffix {
        "" | "f" => 1.0,
        "kf" | "Kf" => 1e3,
        "Mf" => 1e6,
        "Gf" => 1e9,
        "Tf" => 1e12,
        _ => {
            return Err(UnitError {
                input: s.to_string(),
                expected: EXPECTED,
            })
        }
    };
    Ok(v * factor)
}

/// Formats a bandwidth in bytes/s with the largest exact-looking suffix.
pub fn format_bandwidth(bytes_per_sec: f64) -> String {
    if bytes_per_sec >= 1e9 {
        format!("{}GBps", bytes_per_sec / 1e9)
    } else if bytes_per_sec >= 1e6 {
        format!("{}MBps", bytes_per_sec / 1e6)
    } else if bytes_per_sec >= 1e3 {
        format!("{}kBps", bytes_per_sec / 1e3)
    } else {
        format!("{bytes_per_sec}Bps")
    }
}

/// Formats a latency in seconds.
pub fn format_latency(secs: f64) -> String {
    if secs == 0.0 {
        "0s".to_string()
    } else if secs < 1e-6 {
        format!("{}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{}ms", secs * 1e3)
    } else {
        format!("{secs}s")
    }
}

/// Formats a speed in flop/s.
pub fn format_speed(flops: f64) -> String {
    if flops >= 1e9 {
        format!("{}Gf", flops / 1e9)
    } else if flops >= 1e6 {
        format!("{}Mf", flops / 1e6)
    } else {
        format!("{flops}f")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_byte_units() {
        assert_eq!(parse_bandwidth("125MBps").unwrap(), 125e6);
        assert_eq!(parse_bandwidth("1GBps").unwrap(), 1e9);
        assert_eq!(parse_bandwidth("1000").unwrap(), 1000.0);
    }

    #[test]
    fn bandwidth_bit_units() {
        assert_eq!(parse_bandwidth("1Gbps").unwrap(), 125e6);
        assert_eq!(parse_bandwidth("8bps").unwrap(), 1.0);
    }

    #[test]
    fn latency_units() {
        let approx = |s: &str, expect: f64| {
            let v = parse_latency(s).unwrap();
            assert!(
                (v - expect).abs() < 1e-15 * expect.max(1.0),
                "{s} parsed to {v}, expected {expect}"
            );
        };
        approx("50us", 50e-6);
        approx("1.5ms", 1.5e-3);
        approx("2s", 2.0);
        approx("10ns", 10e-9);
    }

    #[test]
    fn speed_units() {
        assert_eq!(parse_speed("2.5Gf").unwrap(), 2.5e9);
        assert_eq!(parse_speed("1Mf").unwrap(), 1e6);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_bandwidth("fast").is_err());
        assert!(parse_latency("50parsecs").is_err());
        assert!(parse_speed("").is_err());
    }

    #[test]
    fn format_roundtrip() {
        for s in ["125MBps", "1GBps", "5kBps"] {
            let v = parse_bandwidth(s).unwrap();
            assert_eq!(parse_bandwidth(&format_bandwidth(v)).unwrap(), v);
        }
        for s in ["50us", "1ms", "3s", "7ns"] {
            let v = parse_latency(s).unwrap();
            assert!((parse_latency(&format_latency(v)).unwrap() - v).abs() < 1e-18);
        }
        for s in ["2.5Gf", "10Mf"] {
            let v = parse_speed(s).unwrap();
            assert_eq!(parse_speed(&format_speed(v)).unwrap(), v);
        }
    }
}
