//! Materializing a platform into the flow-level SURF kernel.
//!
//! Split into two layers so that many concurrent runs can share one parsed
//! platform (the unlock for parallel replication sweeps and a persistent
//! simulation service):
//!
//! * [`PlatformImage`] — the *immutable, shareable* kernel-side plan of a
//!   platform: host speeds, per-kernel-link parameters, the platform-link →
//!   kernel-link mapping, kernel link names, and a thread-safe memoized
//!   route-translation cache. Built once per platform (see
//!   [`crate::RoutedPlatform::image`]) and shared by every run, worker
//!   thread and scenario via `Arc`.
//! * [`Materialized`] — the *per-run* handle: instantiates the image's
//!   hosts and links inside one private [`Simulation`], optionally applying
//!   a [`PlatformPerturbation`] overlay (multiplicative bandwidth/latency/
//!   speed factors), and resolves routes through the shared image cache.
//!
//! Kernel ids are allocated deterministically (creation order), so ids
//! precomputed in the image are valid in every freshly instantiated
//! simulation — asserted at instantiation time.
//!
//! Sharing policies map as follows:
//!
//! * `Shared` — one kernel link, used by both directions (they contend);
//! * `SplitDuplex` — two kernel links (up/down), each with the link's full
//!   capacity, selected by the hop's traversal direction;
//! * `FatPipe` — one kernel link marked un-contended.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use surf_sim::{HostId, LinkId, Simulation};

use crate::perturb::PlatformPerturbation;
use crate::routing::RoutedPlatform;
use crate::spec::{Dir, HostIx, SharingPolicy};

/// Per-platform-link kernel image.
#[derive(Debug, Clone, Copy)]
enum LinkImage {
    /// One kernel link for both directions.
    Single(LinkId),
    /// Forward and reverse kernel links.
    Duplex(LinkId, LinkId),
}

/// Nominal parameters of one kernel link, in kernel-id order.
#[derive(Debug, Clone, Copy)]
struct KernelLink {
    /// Nominal bandwidth, bytes/s.
    bandwidth: f64,
    /// Nominal latency, seconds.
    latency: f64,
    /// `false` for fat pipes (un-contended).
    contended: bool,
    /// The platform link this kernel link serves (perturbation factors are
    /// indexed by platform link).
    platform_link: u32,
}

/// The immutable, shareable kernel-side plan of a platform.
///
/// `Send + Sync`: the only mutable state is the memoized route cache, which
/// is behind a mutex and shared by design — a route translated by one
/// worker is free for every other worker of a sweep.
#[derive(Debug)]
pub struct PlatformImage {
    host_ids: Vec<HostId>,
    host_speeds: Vec<f64>,
    kernel_links: Vec<KernelLink>,
    links: Vec<LinkImage>,
    names: Vec<String>,
    route_cache: RouteCache,
}

/// Memoized host-pair → kernel-link-id route translations, shared across
/// every simulation materialized from the same image.
type RouteCache = Mutex<HashMap<(HostIx, HostIx), Arc<[LinkId]>>>;

impl PlatformImage {
    /// Computes the kernel plan of `rp`: deterministic host/link kernel ids
    /// (derived from a throwaway simulation so the allocation rule lives in
    /// one place — the kernel itself), parameters, and names.
    pub fn build(rp: &RoutedPlatform) -> Self {
        let p = rp.platform();
        let mut probe = Simulation::new();
        let host_ids: Vec<HostId> = p
            .host_indices()
            .map(|h| probe.add_host(p.host_speed(h)))
            .collect();
        let host_speeds = p.host_indices().map(|h| p.host_speed(h)).collect();

        let mut kernel_links = Vec::new();
        let mut names = Vec::new();
        let links = p
            .links()
            .iter()
            .enumerate()
            .map(|(ix, l)| {
                let mut add = |suffix: Option<&str>, contended: bool| {
                    let id = probe.add_link(l.bandwidth, l.latency);
                    debug_assert_eq!(id.index(), kernel_links.len());
                    kernel_links.push(KernelLink {
                        bandwidth: l.bandwidth,
                        latency: l.latency,
                        contended,
                        platform_link: ix as u32,
                    });
                    names.push(match suffix {
                        Some(s) => format!("{}:{}", l.name, s),
                        None => l.name.clone(),
                    });
                    id
                };
                match l.policy {
                    SharingPolicy::Shared => LinkImage::Single(add(None, true)),
                    SharingPolicy::SplitDuplex => {
                        let up = add(Some("up"), true);
                        let down = add(Some("down"), true);
                        LinkImage::Duplex(up, down)
                    }
                    SharingPolicy::FatPipe => LinkImage::Single(add(None, false)),
                }
            })
            .collect();

        PlatformImage {
            host_ids,
            host_speeds,
            kernel_links,
            links,
            names,
            route_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.host_ids.len()
    }

    /// Number of kernel links (split-duplex platform links count twice).
    pub fn num_kernel_links(&self) -> usize {
        self.kernel_links.len()
    }

    /// Human names of the kernel links, indexed by kernel link id (the
    /// materialization creation order). `SplitDuplex` platform links
    /// materialize as two kernel links, named `<name>:up` and
    /// `<name>:down`; everything else keeps the platform link's name.
    /// Used to label contention attribution, which is recorded against
    /// kernel link indices.
    pub fn kernel_link_names(&self) -> &[String] {
        &self.names
    }

    /// Kernel link ids along the route from `src` to `dst`, memoized in the
    /// shared thread-safe cache (route translation is on the per-message
    /// hot path and host pairs repeat constantly).
    pub fn route(&self, rp: &RoutedPlatform, src: HostIx, dst: HostIx) -> Arc<[LinkId]> {
        if let Some(r) = self
            .route_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(src, dst))
        {
            return Arc::clone(r);
        }
        let route: Arc<[LinkId]> = rp
            .route(src, dst)
            .into_iter()
            .map(|hop| match self.links[hop.link.0 as usize] {
                LinkImage::Single(id) => id,
                LinkImage::Duplex(up, down) => match hop.dir {
                    Dir::Forward => up,
                    Dir::Reverse => down,
                },
            })
            .collect();
        self.route_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((src, dst), Arc::clone(&route));
        route
    }
}

/// The per-run kernel-side handle of a platform: one instantiation of a
/// shared [`PlatformImage`] inside one private [`Simulation`].
#[derive(Debug)]
pub struct Materialized {
    image: Arc<PlatformImage>,
}

impl Materialized {
    /// Creates every host and link of `rp` inside `sim` at nominal
    /// parameters (no perturbation).
    pub fn build(rp: &RoutedPlatform, sim: &mut Simulation) -> Self {
        Materialized::instantiate(Arc::clone(rp.image()), sim, None)
    }

    /// Creates every host and link of the image inside `sim`, scaling the
    /// nominal parameters by `perturb`'s factors when given. The overlay
    /// must already be validated against the platform (see
    /// [`PlatformPerturbation::validate`]).
    pub fn instantiate(
        image: Arc<PlatformImage>,
        sim: &mut Simulation,
        perturb: Option<&PlatformPerturbation>,
    ) -> Self {
        for (h, &speed) in image.host_speeds.iter().enumerate() {
            let f = perturb.map_or(1.0, |p| p.host_factor(h));
            let id = sim.add_host(speed * f);
            debug_assert_eq!(id, image.host_ids[h], "non-deterministic host ids");
        }
        for (k, l) in image.kernel_links.iter().enumerate() {
            let (fb, fl) = perturb.map_or((1.0, 1.0), |p| {
                (
                    p.bandwidth_factor(l.platform_link as usize),
                    p.latency_factor(l.platform_link as usize),
                )
            });
            let id = sim.add_link(l.bandwidth * fb, l.latency * fl);
            debug_assert_eq!(id.index(), k, "non-deterministic link ids");
            if !l.contended {
                sim.set_link_contended(id, false);
            }
        }
        Materialized { image }
    }

    /// The shared image this materialization instantiates.
    pub fn image(&self) -> &Arc<PlatformImage> {
        &self.image
    }

    /// Kernel host id of platform host `h`.
    pub fn host(&self, h: HostIx) -> HostId {
        self.image.host_ids[h.0 as usize]
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.image.num_hosts()
    }

    /// Kernel link names (see [`PlatformImage::kernel_link_names`]).
    pub fn kernel_link_names(&self, _rp: &RoutedPlatform) -> Vec<String> {
        self.image.kernel_link_names().to_vec()
    }

    /// Kernel link ids along the route from `src` to `dst` (memoized in the
    /// platform-wide shared cache).
    pub fn route(&self, rp: &RoutedPlatform, src: HostIx, dst: HostIx) -> Arc<[LinkId]> {
        self.image.route(rp, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{flat_cluster, ClusterConfig};
    use crate::spec::Platform;
    use surf_sim::TransferModel;

    #[test]
    fn materialized_cluster_simulates_a_transfer() {
        let rp = RoutedPlatform::new(flat_cluster("c", 2, &ClusterConfig::default()));
        let mut sim = Simulation::new();
        let m = Materialized::build(&rp, &mut sim);
        assert_eq!(m.num_hosts(), 2);
        let route = m.route(&rp, HostIx(0), HostIx(1));
        assert_eq!(route.len(), 2);
        sim.start_transfer(&route, 125e6, &TransferModel::ideal());
        let (t, _) = sim.advance_to_next().unwrap();
        // Two 50 µs links then 1 s at 125 MB/s.
        assert!((t.as_secs() - (100e-6 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn route_cache_returns_identical_routes() {
        let rp = RoutedPlatform::new(flat_cluster("c", 3, &ClusterConfig::default()));
        let mut sim = Simulation::new();
        let m = Materialized::build(&rp, &mut sim);
        let r1 = m.route(&rp, HostIx(0), HostIx(2));
        let r2 = m.route(&rp, HostIx(0), HostIx(2));
        assert_eq!(r1, r2);
    }

    #[test]
    fn image_is_shared_across_materializations() {
        let rp = RoutedPlatform::new(flat_cluster("c", 3, &ClusterConfig::default()));
        let mut sim_a = Simulation::new();
        let mut sim_b = Simulation::new();
        let a = Materialized::build(&rp, &mut sim_a);
        let b = Materialized::build(&rp, &mut sim_b);
        // Same Arc: one plan, one route cache, many runs.
        assert!(Arc::ptr_eq(a.image(), b.image()));
        // Ids agree across simulations (deterministic allocation).
        assert_eq!(a.host(HostIx(1)), b.host(HostIx(1)));
        assert_eq!(
            a.route(&rp, HostIx(0), HostIx(1)),
            b.route(&rp, HostIx(0), HostIx(1))
        );
    }

    #[test]
    fn perturbed_instantiation_scales_parameters() {
        // Two hosts over one shared link at 100 B/s; a 0.5x bandwidth
        // factor makes a 1000 B transfer take twice as long.
        let mut p = Platform::new();
        let h0 = p.add_host("h0", 1e9);
        let h1 = p.add_host("h1", 1e9);
        let n0 = p.host_node(h0);
        let n1 = p.host_node(h1);
        p.link_between(n0, n1, "wire", 100.0, 0.0, SharingPolicy::Shared);
        let rp = RoutedPlatform::new(p);

        let mut perturb = PlatformPerturbation::identity(rp.platform());
        perturb.link_bandwidth[0] = 0.5;
        let mut sim = Simulation::new();
        let m = Materialized::instantiate(Arc::clone(rp.image()), &mut sim, Some(&perturb));
        let route = m.route(&rp, HostIx(0), HostIx(1));
        sim.start_transfer(&route, 1000.0, &TransferModel::ideal());
        let (t, _) = sim.advance_to_next().unwrap();
        assert!((t.as_secs() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn identity_perturbation_is_bit_exact() {
        let rp = RoutedPlatform::new(flat_cluster("c", 4, &ClusterConfig::default()));
        let ident = PlatformPerturbation::identity(rp.platform());
        let mut sim_a = Simulation::new();
        let mut sim_b = Simulation::new();
        let a = Materialized::build(&rp, &mut sim_a);
        let b = Materialized::instantiate(Arc::clone(rp.image()), &mut sim_b, Some(&ident));
        let route_a = a.route(&rp, HostIx(0), HostIx(3));
        let route_b = b.route(&rp, HostIx(0), HostIx(3));
        assert_eq!(route_a, route_b);
        sim_a.start_transfer(&route_a, 12345.0, &TransferModel::default_affine());
        sim_b.start_transfer(&route_b, 12345.0, &TransferModel::default_affine());
        let (ta, _) = sim_a.advance_to_next().unwrap();
        let (tb, _) = sim_b.advance_to_next().unwrap();
        assert_eq!(ta.as_secs().to_bits(), tb.as_secs().to_bits());
    }

    #[test]
    fn split_duplex_directions_do_not_contend() {
        // Two hosts joined by one split-duplex link: simultaneous transfers
        // in opposite directions each get the full bandwidth.
        let mut p = Platform::new();
        let h0 = p.add_host("h0", 1e9);
        let h1 = p.add_host("h1", 1e9);
        let n0 = p.host_node(h0);
        let n1 = p.host_node(h1);
        p.link_between(n0, n1, "wire", 100.0, 0.0, SharingPolicy::SplitDuplex);
        let rp = RoutedPlatform::new(p);
        let mut sim = Simulation::new();
        let m = Materialized::build(&rp, &mut sim);
        let fwd = m.route(&rp, HostIx(0), HostIx(1));
        let rev = m.route(&rp, HostIx(1), HostIx(0));
        assert_ne!(fwd, rev, "directions must map to distinct kernel links");
        sim.start_transfer(&fwd, 1000.0, &TransferModel::ideal());
        sim.start_transfer(&rev, 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        assert!((t.as_secs() - 10.0).abs() < 1e-9);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn split_duplex_same_direction_contends() {
        // Three hosts on a star; two flows *into* the same destination share
        // its down-link.
        let rp = RoutedPlatform::new(flat_cluster(
            "c",
            3,
            &ClusterConfig {
                link_bandwidth: 100.0,
                link_latency: 0.0,
                ..ClusterConfig::default()
            },
        ));
        let mut sim = Simulation::new();
        let m = Materialized::build(&rp, &mut sim);
        let r1 = m.route(&rp, HostIx(1), HostIx(0));
        let r2 = m.route(&rp, HostIx(2), HostIx(0));
        sim.start_transfer(&r1, 1000.0, &TransferModel::ideal());
        sim.start_transfer(&r2, 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        // Both contend on host 0's incoming channel: 50 B/s each.
        assert!((t.as_secs() - 20.0).abs() < 1e-9);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn kernel_link_names_follow_materialization_order() {
        let mut p = Platform::new();
        let h0 = p.add_host("h0", 1e9);
        let h1 = p.add_host("h1", 1e9);
        let n0 = p.host_node(h0);
        let n1 = p.host_node(h1);
        p.link_between(n0, n1, "shared", 100.0, 0.0, SharingPolicy::Shared);
        p.link_between(n0, n1, "duplex", 100.0, 0.0, SharingPolicy::SplitDuplex);
        p.link_between(n0, n1, "fat", 100.0, 0.0, SharingPolicy::FatPipe);
        let rp = RoutedPlatform::new(p);
        let mut sim = Simulation::new();
        let m = Materialized::build(&rp, &mut sim);
        assert_eq!(
            m.kernel_link_names(&rp),
            vec!["shared", "duplex:up", "duplex:down", "fat"]
        );
    }

    #[test]
    fn fatpipe_links_do_not_contend() {
        let mut p = Platform::new();
        let h0 = p.add_host("h0", 1e9);
        let h1 = p.add_host("h1", 1e9);
        let n0 = p.host_node(h0);
        let n1 = p.host_node(h1);
        p.link_between(n0, n1, "fat", 100.0, 0.0, SharingPolicy::FatPipe);
        let rp = RoutedPlatform::new(p);
        let mut sim = Simulation::new();
        let m = Materialized::build(&rp, &mut sim);
        let route = m.route(&rp, HostIx(0), HostIx(1));
        sim.start_transfer(&route, 1000.0, &TransferModel::ideal());
        sim.start_transfer(&route, 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        assert!((t.as_secs() - 10.0).abs() < 1e-9);
        assert_eq!(done.len(), 2);
    }
}
