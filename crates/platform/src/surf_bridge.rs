//! Materializing a platform into the flow-level SURF kernel.
//!
//! [`Materialized`] owns the mapping from platform indices to kernel ids and
//! memoizes translated routes: route lookup is on the per-message hot path of
//! an SMPI simulation, and host pairs repeat constantly (collectives), so a
//! small cache removes the repeated BFS-walk translation cost.
//!
//! Sharing policies map as follows:
//!
//! * `Shared` — one kernel link, used by both directions (they contend);
//! * `SplitDuplex` — two kernel links (up/down), each with the link's full
//!   capacity, selected by the hop's traversal direction;
//! * `FatPipe` — one kernel link marked un-contended.

use std::cell::RefCell;
use std::collections::HashMap;

use surf_sim::{HostId, LinkId, Simulation};

use crate::routing::RoutedPlatform;
use crate::spec::{Dir, HostIx, SharingPolicy};

/// Per-platform-link kernel image.
#[derive(Debug, Clone, Copy)]
enum LinkImage {
    /// One kernel link for both directions.
    Single(LinkId),
    /// Forward and reverse kernel links.
    Duplex(LinkId, LinkId),
}

/// The kernel-side image of a platform.
#[derive(Debug)]
pub struct Materialized {
    hosts: Vec<HostId>,
    links: Vec<LinkImage>,
    route_cache: RefCell<HashMap<(HostIx, HostIx), Vec<LinkId>>>,
}

impl Materialized {
    /// Creates every host and link of `rp` inside `sim`.
    pub fn build(rp: &RoutedPlatform, sim: &mut Simulation) -> Self {
        let p = rp.platform();
        let hosts = p
            .host_indices()
            .map(|h| sim.add_host(p.host_speed(h)))
            .collect();
        let links = p
            .links()
            .iter()
            .map(|l| match l.policy {
                SharingPolicy::Shared => LinkImage::Single(sim.add_link(l.bandwidth, l.latency)),
                SharingPolicy::SplitDuplex => {
                    let up = sim.add_link(l.bandwidth, l.latency);
                    let down = sim.add_link(l.bandwidth, l.latency);
                    LinkImage::Duplex(up, down)
                }
                SharingPolicy::FatPipe => {
                    let id = sim.add_link(l.bandwidth, l.latency);
                    sim.set_link_contended(id, false);
                    LinkImage::Single(id)
                }
            })
            .collect();
        Materialized {
            hosts,
            links,
            route_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Kernel host id of platform host `h`.
    pub fn host(&self, h: HostIx) -> HostId {
        self.hosts[h.0 as usize]
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Human names of the kernel links, indexed by kernel link id (the
    /// creation order of [`build`](Self::build)). `SplitDuplex` platform
    /// links materialize as two kernel links, named `<name>:up` and
    /// `<name>:down`; everything else keeps the platform link's name.
    /// Used to label contention attribution, which is recorded against
    /// kernel link indices.
    pub fn kernel_link_names(&self, rp: &RoutedPlatform) -> Vec<String> {
        let p = rp.platform();
        let mut names = Vec::new();
        for (img, l) in self.links.iter().zip(p.links()) {
            match img {
                LinkImage::Single(id) => {
                    debug_assert_eq!(id.index(), names.len());
                    names.push(l.name.clone());
                }
                LinkImage::Duplex(up, down) => {
                    debug_assert_eq!(up.index(), names.len());
                    names.push(format!("{}:up", l.name));
                    debug_assert_eq!(down.index(), names.len());
                    names.push(format!("{}:down", l.name));
                }
            }
        }
        names
    }

    /// Kernel link ids along the route from `src` to `dst` (memoized).
    pub fn route(&self, rp: &RoutedPlatform, src: HostIx, dst: HostIx) -> Vec<LinkId> {
        if let Some(r) = self.route_cache.borrow().get(&(src, dst)) {
            return r.clone();
        }
        let route: Vec<LinkId> = rp
            .route(src, dst)
            .into_iter()
            .map(|hop| match self.links[hop.link.0 as usize] {
                LinkImage::Single(id) => id,
                LinkImage::Duplex(up, down) => match hop.dir {
                    Dir::Forward => up,
                    Dir::Reverse => down,
                },
            })
            .collect();
        self.route_cache
            .borrow_mut()
            .insert((src, dst), route.clone());
        route
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{flat_cluster, ClusterConfig};
    use crate::spec::Platform;
    use surf_sim::TransferModel;

    #[test]
    fn materialized_cluster_simulates_a_transfer() {
        let rp = RoutedPlatform::new(flat_cluster("c", 2, &ClusterConfig::default()));
        let mut sim = Simulation::new();
        let m = Materialized::build(&rp, &mut sim);
        assert_eq!(m.num_hosts(), 2);
        let route = m.route(&rp, HostIx(0), HostIx(1));
        assert_eq!(route.len(), 2);
        sim.start_transfer(&route, 125e6, &TransferModel::ideal());
        let (t, _) = sim.advance_to_next().unwrap();
        // Two 50 µs links then 1 s at 125 MB/s.
        assert!((t.as_secs() - (100e-6 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn route_cache_returns_identical_routes() {
        let rp = RoutedPlatform::new(flat_cluster("c", 3, &ClusterConfig::default()));
        let mut sim = Simulation::new();
        let m = Materialized::build(&rp, &mut sim);
        let r1 = m.route(&rp, HostIx(0), HostIx(2));
        let r2 = m.route(&rp, HostIx(0), HostIx(2));
        assert_eq!(r1, r2);
    }

    #[test]
    fn split_duplex_directions_do_not_contend() {
        // Two hosts joined by one split-duplex link: simultaneous transfers
        // in opposite directions each get the full bandwidth.
        let mut p = Platform::new();
        let h0 = p.add_host("h0", 1e9);
        let h1 = p.add_host("h1", 1e9);
        let n0 = p.host_node(h0);
        let n1 = p.host_node(h1);
        p.link_between(n0, n1, "wire", 100.0, 0.0, SharingPolicy::SplitDuplex);
        let rp = RoutedPlatform::new(p);
        let mut sim = Simulation::new();
        let m = Materialized::build(&rp, &mut sim);
        let fwd = m.route(&rp, HostIx(0), HostIx(1));
        let rev = m.route(&rp, HostIx(1), HostIx(0));
        assert_ne!(fwd, rev, "directions must map to distinct kernel links");
        sim.start_transfer(&fwd, 1000.0, &TransferModel::ideal());
        sim.start_transfer(&rev, 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        assert!((t.as_secs() - 10.0).abs() < 1e-9);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn split_duplex_same_direction_contends() {
        // Three hosts on a star; two flows *into* the same destination share
        // its down-link.
        let rp = RoutedPlatform::new(flat_cluster(
            "c",
            3,
            &ClusterConfig {
                link_bandwidth: 100.0,
                link_latency: 0.0,
                ..ClusterConfig::default()
            },
        ));
        let mut sim = Simulation::new();
        let m = Materialized::build(&rp, &mut sim);
        let r1 = m.route(&rp, HostIx(1), HostIx(0));
        let r2 = m.route(&rp, HostIx(2), HostIx(0));
        sim.start_transfer(&r1, 1000.0, &TransferModel::ideal());
        sim.start_transfer(&r2, 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        // Both contend on host 0's incoming channel: 50 B/s each.
        assert!((t.as_secs() - 20.0).abs() < 1e-9);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn kernel_link_names_follow_materialization_order() {
        let mut p = Platform::new();
        let h0 = p.add_host("h0", 1e9);
        let h1 = p.add_host("h1", 1e9);
        let n0 = p.host_node(h0);
        let n1 = p.host_node(h1);
        p.link_between(n0, n1, "shared", 100.0, 0.0, SharingPolicy::Shared);
        p.link_between(n0, n1, "duplex", 100.0, 0.0, SharingPolicy::SplitDuplex);
        p.link_between(n0, n1, "fat", 100.0, 0.0, SharingPolicy::FatPipe);
        let rp = RoutedPlatform::new(p);
        let mut sim = Simulation::new();
        let m = Materialized::build(&rp, &mut sim);
        assert_eq!(
            m.kernel_link_names(&rp),
            vec!["shared", "duplex:up", "duplex:down", "fat"]
        );
    }

    #[test]
    fn fatpipe_links_do_not_contend() {
        let mut p = Platform::new();
        let h0 = p.add_host("h0", 1e9);
        let h1 = p.add_host("h1", 1e9);
        let n0 = p.host_node(h0);
        let n1 = p.host_node(h1);
        p.link_between(n0, n1, "fat", 100.0, 0.0, SharingPolicy::FatPipe);
        let rp = RoutedPlatform::new(p);
        let mut sim = Simulation::new();
        let m = Materialized::build(&rp, &mut sim);
        let route = m.route(&rp, HostIx(0), HostIx(1));
        sim.start_transfer(&route, 1000.0, &TransferModel::ideal());
        sim.start_transfer(&route, 1000.0, &TransferModel::ideal());
        let (t, done) = sim.advance_to_next().unwrap();
        assert!((t.as_secs() - 10.0).abs() < 1e-9);
        assert_eq!(done.len(), 2);
    }
}
