//! Cluster topology builders.
//!
//! The paper's experiments run on two Grid'5000 clusters (§7):
//!
//! * **griffon** — 92 nodes in 3 cabinets (33/27/32), Gigabit Ethernet to the
//!   cabinet switch, cabinet switches joined by a 10 GbE second-level switch;
//! * **gdx** — 312 nodes in 36 cabinets, two cabinets per switch (18 switches),
//!   every switch joined to one second-level switch through 1 GbE links, so
//!   distant nodes communicate across three switches.
//!
//! [`griffon`] and [`gdx`] rebuild those fabrics; [`flat_cluster`] and
//! [`hierarchical_cluster`] are the general constructors.
//!
//! Cluster links use the `Shared` sharing policy (both directions share one
//! capacity pool), matching the SimGrid platform models of the paper's era.
//! This is deliberate: on TCP/GbE, simultaneous bidirectional transfers
//! degrade far below 2× the unidirectional rate (ACK/data interference), and
//! the shared model is what makes the pairwise all-to-all contention effect
//! of Fig. 11 appear. `SplitDuplex` remains available for platforms built
//! by hand.

use crate::spec::{Platform, SharingPolicy};

/// Parameters shared by all cluster builders.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Compute speed of each node, flop/s.
    pub node_speed: f64,
    /// Bandwidth of each node's access link, bytes/s.
    pub link_bandwidth: f64,
    /// Latency of each node's access link, seconds.
    pub link_latency: f64,
    /// Bandwidth of cabinet-to-spine uplinks, bytes/s.
    pub uplink_bandwidth: f64,
    /// Latency of cabinet-to-spine uplinks, seconds.
    pub uplink_latency: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        // A generic GbE cluster: 1 Gf/s nodes, 1 GbE access links with 50 µs
        // latency, 10 GbE uplinks.
        ClusterConfig {
            node_speed: 1e9,
            link_bandwidth: 125e6,
            link_latency: 50e-6,
            uplink_bandwidth: 1.25e9,
            uplink_latency: 10e-6,
        }
    }
}

/// Builds a single-switch cluster of `n` nodes named `prefix-0..n`.
pub fn flat_cluster(prefix: &str, n: usize, cfg: &ClusterConfig) -> Platform {
    assert!(n > 0, "a cluster needs at least one node");
    let mut p = Platform::new();
    let sw = p.add_switch(format!("{prefix}-switch"));
    for i in 0..n {
        let h = p.add_host(format!("{prefix}-{i}"), cfg.node_speed);
        let node = p.host_node(h);
        p.link_between(
            node,
            sw,
            format!("{prefix}-link-{i}"),
            cfg.link_bandwidth,
            cfg.link_latency,
            SharingPolicy::Shared,
        );
    }
    p
}

/// Builds a two-level cluster: one switch per cabinet, every cabinet switch
/// connected to a spine switch. `cabinets[i]` is the node count of cabinet
/// `i`; hosts are named `prefix-<global index>`.
pub fn hierarchical_cluster(prefix: &str, cabinets: &[usize], cfg: &ClusterConfig) -> Platform {
    assert!(!cabinets.is_empty() && cabinets.iter().all(|&c| c > 0));
    let mut p = Platform::new();
    let spine = p.add_switch(format!("{prefix}-spine"));
    let mut host_ix = 0usize;
    for (c, &size) in cabinets.iter().enumerate() {
        let sw = p.add_switch(format!("{prefix}-cab{c}-switch"));
        p.link_between(
            sw,
            spine,
            format!("{prefix}-cab{c}-uplink"),
            cfg.uplink_bandwidth,
            cfg.uplink_latency,
            SharingPolicy::Shared,
        );
        for _ in 0..size {
            let h = p.add_host(format!("{prefix}-{host_ix}"), cfg.node_speed);
            let node = p.host_node(h);
            p.link_between(
                node,
                sw,
                format!("{prefix}-link-{host_ix}"),
                cfg.link_bandwidth,
                cfg.link_latency,
                SharingPolicy::Shared,
            );
            host_ix += 1;
        }
    }
    p
}

/// The griffon cluster of the paper: 92 Xeon L5420 nodes (2.5 GHz dual-proc
/// quad-core), cabinets of 33/27/32 nodes, GbE access, 10 GbE spine.
pub fn griffon() -> Platform {
    let cfg = ClusterConfig {
        node_speed: 20e9, // 8 cores x 2.5 GHz, ~1 flop/cycle effective
        link_bandwidth: 125e6,
        link_latency: 50e-6,
        uplink_bandwidth: 1.25e9,
        uplink_latency: 10e-6,
    };
    hierarchical_cluster("griffon", &[33, 27, 32], &cfg)
}

/// The gdx cluster of the paper: 312 Opteron 246 nodes (2.0 GHz dual-proc)
/// across 36 cabinets, two cabinets per switch (18 switches of ~17 nodes),
/// all switches joined to one second-level switch by 1 GbE links. A
/// communication between distant cabinets crosses three switches.
pub fn gdx() -> Platform {
    let cfg = ClusterConfig {
        node_speed: 4e9, // 2 cores x 2.0 GHz
        link_bandwidth: 125e6,
        link_latency: 60e-6,
        uplink_bandwidth: 125e6, // 1 GbE uplinks, per the paper
        uplink_latency: 15e-6,
    };
    // 312 nodes over 18 switch groups: 312 = 18*17 + 6, so 6 groups of 18
    // and 12 groups of 17.
    let mut groups = vec![18usize; 6];
    groups.extend(std::iter::repeat_n(17, 12));
    debug_assert_eq!(groups.iter().sum::<usize>(), 312);
    hierarchical_cluster("gdx", &groups, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutedPlatform;
    use crate::spec::HostIx;

    #[test]
    fn flat_cluster_shape() {
        let p = flat_cluster("c", 4, &ClusterConfig::default());
        assert_eq!(p.num_hosts(), 4);
        assert_eq!(p.num_nodes(), 5); // 4 hosts + 1 switch
        assert_eq!(p.num_links(), 4);
        let rp = RoutedPlatform::new(p);
        assert_eq!(rp.route(HostIx(0), HostIx(3)).len(), 2);
    }

    #[test]
    fn hierarchical_cluster_shape() {
        let p = hierarchical_cluster("c", &[2, 3], &ClusterConfig::default());
        assert_eq!(p.num_hosts(), 5);
        assert_eq!(p.num_nodes(), 5 + 3); // hosts + 2 cabinet switches + spine
        assert_eq!(p.num_links(), 5 + 2); // access links + uplinks
    }

    #[test]
    fn griffon_matches_paper() {
        let p = griffon();
        assert_eq!(p.num_hosts(), 92);
        let rp = RoutedPlatform::new(p);
        // Same cabinet: host link + host link.
        assert_eq!(rp.route(HostIx(0), HostIx(1)).len(), 2);
        // Cross cabinet: host link + uplink + uplink + host link.
        assert_eq!(rp.route(HostIx(0), HostIx(91)).len(), 4);
        // Intra-cabinet bottleneck is GbE.
        assert_eq!(rp.bandwidth(HostIx(0), HostIx(1)), 125e6);
    }

    #[test]
    fn gdx_matches_paper() {
        let p = gdx();
        assert_eq!(p.num_hosts(), 312);
        let rp = RoutedPlatform::new(p);
        // Distant cabinets: three switches on the path => 4 links.
        let route = rp.route(HostIx(0), HostIx(311));
        assert_eq!(route.len(), 4);
        // gdx uplinks are only 1 GbE, so the bottleneck is still 125 MB/s.
        assert_eq!(rp.bandwidth(HostIx(0), HostIx(311)), 125e6);
    }

    #[test]
    fn same_switch_pair_exists_in_gdx() {
        let p = gdx();
        let rp = RoutedPlatform::new(p);
        // Hosts 0 and 1 are in the first group: one switch between them.
        assert_eq!(rp.route(HostIx(0), HostIx(1)).len(), 2);
    }
}
