//! Stochastic platform perturbation overlays.
//!
//! A [`PlatformPerturbation`] is a set of multiplicative factors applied to
//! a platform's nominal parameters — per-host compute speed, per-link
//! bandwidth and latency — when a simulation backend materializes the
//! platform for one run. The platform description itself stays untouched
//! and shared: many concurrent runs over one [`crate::RoutedPlatform`] can
//! each carry a different overlay, which is what makes variability sweeps
//! ("does the predicted makespan survive ±5% link jitter?") cheap.
//!
//! Factors are *multiplicative* so the identity overlay (all `1.0`) is
//! bit-exact: `x * 1.0 == x` for every finite IEEE-754 `x`, which the
//! zero-amplitude determinism tests rely on.

use crate::spec::Platform;

/// Multiplicative perturbation factors for one platform, indexed by the
/// platform's own host and link numbering.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformPerturbation {
    /// Per-host compute-speed factor (`platform.num_hosts()` entries).
    pub host_speed: Vec<f64>,
    /// Per-link bandwidth factor (`platform.num_links()` entries).
    pub link_bandwidth: Vec<f64>,
    /// Per-link latency factor (`platform.num_links()` entries).
    pub link_latency: Vec<f64>,
}

impl PlatformPerturbation {
    /// The identity overlay for `p`: every factor exactly `1.0`.
    pub fn identity(p: &Platform) -> Self {
        PlatformPerturbation {
            host_speed: vec![1.0; p.num_hosts()],
            link_bandwidth: vec![1.0; p.num_links()],
            link_latency: vec![1.0; p.num_links()],
        }
    }

    /// `true` when every factor is exactly `1.0` (the do-nothing overlay).
    pub fn is_identity(&self) -> bool {
        self.host_speed
            .iter()
            .chain(&self.link_bandwidth)
            .chain(&self.link_latency)
            .all(|&f| f == 1.0)
    }

    /// Checks the overlay against a platform: lengths must match the host
    /// and link counts, and every factor must be finite and positive (a
    /// zero or negative speed/bandwidth would stall the kernel).
    pub fn validate(&self, p: &Platform) -> Result<(), String> {
        if self.host_speed.len() != p.num_hosts() {
            return Err(format!(
                "host_speed has {} factors, platform has {} hosts",
                self.host_speed.len(),
                p.num_hosts()
            ));
        }
        if self.link_bandwidth.len() != p.num_links() {
            return Err(format!(
                "link_bandwidth has {} factors, platform has {} links",
                self.link_bandwidth.len(),
                p.num_links()
            ));
        }
        if self.link_latency.len() != p.num_links() {
            return Err(format!(
                "link_latency has {} factors, platform has {} links",
                self.link_latency.len(),
                p.num_links()
            ));
        }
        for (what, fs) in [
            ("host_speed", &self.host_speed),
            ("link_bandwidth", &self.link_bandwidth),
            ("link_latency", &self.link_latency),
        ] {
            if let Some(f) = fs.iter().find(|f| !f.is_finite() || **f <= 0.0) {
                return Err(format!("{what} factor {f} is not finite and positive"));
            }
        }
        Ok(())
    }

    /// Speed factor for host `h` (`1.0` past the vector end, so partial
    /// overlays behave as identity for the remainder).
    pub fn host_factor(&self, h: usize) -> f64 {
        self.host_speed.get(h).copied().unwrap_or(1.0)
    }

    /// Bandwidth factor for platform link `l`.
    pub fn bandwidth_factor(&self, l: usize) -> f64 {
        self.link_bandwidth.get(l).copied().unwrap_or(1.0)
    }

    /// Latency factor for platform link `l`.
    pub fn latency_factor(&self, l: usize) -> f64 {
        self.link_latency.get(l).copied().unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{flat_cluster, ClusterConfig};

    #[test]
    fn identity_validates_and_reports_identity() {
        let p = flat_cluster("c", 4, &ClusterConfig::default());
        let o = PlatformPerturbation::identity(&p);
        assert!(o.validate(&p).is_ok());
        assert!(o.is_identity());
    }

    #[test]
    fn wrong_lengths_and_bad_factors_are_rejected() {
        let p = flat_cluster("c", 4, &ClusterConfig::default());
        let mut o = PlatformPerturbation::identity(&p);
        o.host_speed.pop();
        assert!(o.validate(&p).is_err());

        let mut o = PlatformPerturbation::identity(&p);
        o.link_bandwidth[0] = 0.0;
        assert!(o.validate(&p).is_err());
        o.link_bandwidth[0] = f64::NAN;
        assert!(o.validate(&p).is_err());
        o.link_bandwidth[0] = 0.9;
        assert!(o.validate(&p).is_ok());
        assert!(!o.is_identity());
    }
}
