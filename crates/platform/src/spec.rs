//! Target-platform description (paper §6).
//!
//! A [`Platform`] is a pure description: hosts and switches (nodes), links
//! with nominal bandwidth/latency, and the topology connecting them. It is
//! consumed by two very different engines:
//!
//! * the flow-level SURF kernel (via [`crate::surf_bridge`]) for SMPI
//!   simulations, and
//! * the packet-level `packetnet` simulator that plays the role of the
//!   real-world clusters in the reproduction.
//!
//! Keeping the description engine-agnostic guarantees both simulators see
//! *exactly* the same hardware, which is what makes accuracy comparisons
//! meaningful.

use std::collections::HashMap;

/// Index of a node (host or switch) in a [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIx(pub u32);

/// Index of a host among the platform's hosts (dense, 0-based; this is what
/// MPI ranks map onto).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostIx(pub u32);

/// Index of a link in a [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkIx(pub u32);

/// How a link's capacity is shared among flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharingPolicy {
    /// Both directions share one capacity pool (SimGrid default for plain
    /// `<link>` elements).
    #[default]
    Shared,
    /// Each direction has its own full capacity (full-duplex Ethernet; what
    /// SimGrid's `<cluster>` tag generates for node access links).
    SplitDuplex,
    /// The link never contends (models an over-provisioned backplane).
    FatPipe,
}

/// Traversal direction of a link along a route. `Forward` means from the
/// edge's `a` endpoint towards `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// a → b.
    Forward,
    /// b → a.
    Reverse,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::Forward => Dir::Reverse,
            Dir::Reverse => Dir::Forward,
        }
    }
}

/// One hop of a route: a link and the direction it is traversed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hop {
    /// The link crossed.
    pub link: LinkIx,
    /// Traversal direction (only meaningful for `SplitDuplex` links).
    pub dir: Dir,
}

impl Hop {
    /// Forward-direction hop over `link`.
    pub fn fwd(link: LinkIx) -> Hop {
        Hop {
            link,
            dir: Dir::Forward,
        }
    }

    /// The same hop walked the other way.
    pub fn flip(self) -> Hop {
        Hop {
            link: self.link,
            dir: self.dir.flip(),
        }
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A compute node with a speed in flop/s.
    Host { speed: f64 },
    /// A switch: pure forwarding, no compute.
    Switch,
}

/// A node of the platform graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Unique name (e.g. `griffon-12`, `cabinet1-switch`).
    pub name: String,
    /// Host or switch.
    pub kind: NodeKind,
}

/// A link of the platform graph.
#[derive(Debug, Clone)]
pub struct Link {
    /// Unique name.
    pub name: String,
    /// Nominal bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Nominal one-way latency in seconds.
    pub latency: f64,
    /// Contention behaviour.
    pub policy: SharingPolicy,
}

/// An edge of the topology: `link` connects nodes `a` and `b` (full duplex).
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeIx,
    /// The other endpoint.
    pub b: NodeIx,
    /// The link realizing this edge.
    pub link: LinkIx,
}

/// A complete platform description.
#[derive(Debug, Clone, Default)]
pub struct Platform {
    nodes: Vec<Node>,
    links: Vec<Link>,
    edges: Vec<Edge>,
    /// Hosts in declaration order; `hosts[i]` is the node index of host `i`.
    hosts: Vec<NodeIx>,
    names: HashMap<String, NodeIx>,
    link_names: HashMap<String, LinkIx>,
    /// The edge each link realizes (a link belongs to at most one edge).
    edge_of_link: HashMap<LinkIx, (NodeIx, NodeIx)>,
    /// Routes declared explicitly (e.g. from an XML file); they override the
    /// shortest-path routing for the given (src, dst) host pair.
    explicit_routes: HashMap<(HostIx, HostIx), Vec<Hop>>,
}

impl Platform {
    /// Creates an empty platform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a compute host. Names must be unique across hosts and switches.
    pub fn add_host(&mut self, name: impl Into<String>, speed: f64) -> HostIx {
        assert!(speed > 0.0 && speed.is_finite(), "invalid host speed");
        let node = self.add_node(name.into(), NodeKind::Host { speed });
        self.hosts.push(node);
        HostIx(u32::try_from(self.hosts.len() - 1).unwrap())
    }

    /// Adds a switch.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeIx {
        self.add_node(name.into(), NodeKind::Switch)
    }

    fn add_node(&mut self, name: String, kind: NodeKind) -> NodeIx {
        assert!(
            !self.names.contains_key(&name),
            "duplicate node name {name:?}"
        );
        let ix = NodeIx(u32::try_from(self.nodes.len()).unwrap());
        self.names.insert(name.clone(), ix);
        self.nodes.push(Node { name, kind });
        ix
    }

    /// Adds a link (not yet attached to the topology).
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        bandwidth: f64,
        latency: f64,
        policy: SharingPolicy,
    ) -> LinkIx {
        let name = name.into();
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "invalid bandwidth"
        );
        assert!(latency >= 0.0 && latency.is_finite(), "invalid latency");
        assert!(
            !self.link_names.contains_key(&name),
            "duplicate link name {name:?}"
        );
        let ix = LinkIx(u32::try_from(self.links.len()).unwrap());
        self.link_names.insert(name.clone(), ix);
        self.links.push(Link {
            name,
            bandwidth,
            latency,
            policy,
        });
        ix
    }

    /// Connects two nodes with an existing link (full duplex edge). A link
    /// may realize at most one edge: directionality would be ambiguous
    /// otherwise.
    pub fn connect(&mut self, a: NodeIx, b: NodeIx, link: LinkIx) {
        assert!(a != b, "self-loop edges are not allowed");
        assert!((a.0 as usize) < self.nodes.len());
        assert!((b.0 as usize) < self.nodes.len());
        assert!((link.0 as usize) < self.links.len());
        assert!(
            self.edge_of_link.insert(link, (a, b)).is_none(),
            "link {:?} already realizes an edge",
            self.link(link).name
        );
        self.edges.push(Edge { a, b, link });
    }

    /// The endpoints of the edge a link realizes, if it is part of the
    /// topology (links used only in explicit routes have none).
    pub fn edge_endpoints(&self, link: LinkIx) -> Option<(NodeIx, NodeIx)> {
        self.edge_of_link.get(&link).copied()
    }

    /// Convenience: create a link and connect it in one call.
    pub fn link_between(
        &mut self,
        a: NodeIx,
        b: NodeIx,
        name: impl Into<String>,
        bandwidth: f64,
        latency: f64,
        policy: SharingPolicy,
    ) -> LinkIx {
        let l = self.add_link(name, bandwidth, latency, policy);
        self.connect(a, b, l);
        l
    }

    /// Declares an explicit route between two hosts, overriding shortest-path
    /// routing. Symmetric: the reverse route (links reversed, directions
    /// flipped) is registered automatically unless one already exists.
    pub fn add_explicit_route(&mut self, src: HostIx, dst: HostIx, hops: Vec<Hop>) {
        let rev: Vec<Hop> = hops.iter().rev().map(|h| h.flip()).collect();
        self.explicit_routes.insert((src, dst), hops);
        self.explicit_routes.entry((dst, src)).or_insert(rev);
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of nodes (hosts + switches).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The node index of a host.
    pub fn host_node(&self, h: HostIx) -> NodeIx {
        self.hosts[h.0 as usize]
    }

    /// Host metadata.
    pub fn host(&self, h: HostIx) -> &Node {
        &self.nodes[self.hosts[h.0 as usize].0 as usize]
    }

    /// Compute speed of a host in flop/s.
    pub fn host_speed(&self, h: HostIx) -> f64 {
        match self.host(h).kind {
            NodeKind::Host { speed } => speed,
            NodeKind::Switch => unreachable!("host index points at a switch"),
        }
    }

    /// All hosts, in index order.
    pub fn host_indices(&self) -> impl Iterator<Item = HostIx> + '_ {
        (0..self.hosts.len() as u32).map(HostIx)
    }

    /// Node metadata.
    pub fn node(&self, n: NodeIx) -> &Node {
        &self.nodes[n.0 as usize]
    }

    /// Link metadata.
    pub fn link(&self, l: LinkIx) -> &Link {
        &self.links[l.0 as usize]
    }

    /// All topology edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeIx> {
        self.names.get(name).copied()
    }

    /// Looks a host up by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostIx> {
        let node = self.node_by_name(name)?;
        self.hosts
            .iter()
            .position(|&n| n == node)
            .map(|i| HostIx(i as u32))
    }

    /// Looks a link up by name.
    pub fn link_by_name(&self, name: &str) -> Option<LinkIx> {
        self.link_names.get(name).copied()
    }

    /// Explicitly declared route for a host pair, if any.
    pub fn explicit_route(&self, src: HostIx, dst: HostIx) -> Option<&[Hop]> {
        self.explicit_routes.get(&(src, dst)).map(|v| v.as_slice())
    }

    /// Sum of nominal latencies along a route.
    pub fn route_latency(&self, route: &[Hop]) -> f64 {
        route.iter().map(|h| self.link(h.link).latency).sum()
    }

    /// Minimum nominal bandwidth along a route.
    pub fn route_bandwidth(&self, route: &[Hop]) -> f64 {
        route
            .iter()
            .map(|h| self.link(h.link).bandwidth)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_a_tiny_platform() {
        let mut p = Platform::new();
        let h0 = p.add_host("h0", 1e9);
        let h1 = p.add_host("h1", 1e9);
        let sw = p.add_switch("sw");
        p.link_between(
            p.host_node(h0),
            sw,
            "l0",
            125e6,
            50e-6,
            SharingPolicy::Shared,
        );
        p.link_between(
            p.host_node(h1),
            sw,
            "l1",
            125e6,
            50e-6,
            SharingPolicy::Shared,
        );
        assert_eq!(p.num_hosts(), 2);
        assert_eq!(p.num_nodes(), 3);
        assert_eq!(p.num_links(), 2);
        assert_eq!(p.host_by_name("h1"), Some(h1));
        assert_eq!(p.node_by_name("sw"), Some(sw));
        assert_eq!(p.host_speed(h0), 1e9);
    }

    #[test]
    #[should_panic]
    fn duplicate_names_rejected() {
        let mut p = Platform::new();
        p.add_host("x", 1.0);
        p.add_switch("x");
    }

    #[test]
    #[should_panic]
    fn self_loops_rejected() {
        let mut p = Platform::new();
        let h = p.add_host("h", 1.0);
        let l = p.add_link("l", 1.0, 0.0, SharingPolicy::Shared);
        p.connect(p.host_node(h), p.host_node(h), l);
    }

    #[test]
    fn explicit_routes_are_symmetric_with_flipped_directions() {
        let mut p = Platform::new();
        let h0 = p.add_host("h0", 1.0);
        let h1 = p.add_host("h1", 1.0);
        let la = p.add_link("a", 1.0, 0.0, SharingPolicy::Shared);
        let lb = p.add_link("b", 1.0, 0.0, SharingPolicy::Shared);
        p.add_explicit_route(h0, h1, vec![Hop::fwd(la), Hop::fwd(lb)]);
        assert_eq!(
            p.explicit_route(h0, h1).unwrap(),
            &[Hop::fwd(la), Hop::fwd(lb)]
        );
        assert_eq!(
            p.explicit_route(h1, h0).unwrap(),
            &[Hop::fwd(lb).flip(), Hop::fwd(la).flip()]
        );
    }

    #[test]
    fn route_aggregates() {
        let mut p = Platform::new();
        let _ = p.add_host("h", 1.0);
        let a = p.add_link("a", 100.0, 0.1, SharingPolicy::Shared);
        let b = p.add_link("b", 50.0, 0.2, SharingPolicy::Shared);
        let route = [Hop::fwd(a), Hop::fwd(b)];
        assert!((p.route_latency(&route) - 0.3).abs() < 1e-15);
        assert_eq!(p.route_bandwidth(&route), 50.0);
    }

    #[test]
    #[should_panic]
    fn link_cannot_realize_two_edges() {
        let mut p = Platform::new();
        let h0 = p.add_host("h0", 1.0);
        let h1 = p.add_host("h1", 1.0);
        let h2 = p.add_host("h2", 1.0);
        let l = p.add_link("l", 1.0, 0.0, SharingPolicy::Shared);
        p.connect(p.host_node(h0), p.host_node(h1), l);
        p.connect(p.host_node(h1), p.host_node(h2), l);
    }

    #[test]
    fn dir_flip_roundtrips() {
        assert_eq!(Dir::Forward.flip(), Dir::Reverse);
        assert_eq!(Dir::Reverse.flip().flip(), Dir::Reverse);
    }
}
