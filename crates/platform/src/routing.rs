//! Shortest-path routing over the platform graph.
//!
//! Routes between hosts are computed once with breadth-first search (hop
//! count metric, deterministic tie-breaking by node insertion order) and
//! stored as a next-hop table, exactly like the static routing of a real
//! cluster fabric. Every hop records the link's traversal direction so that
//! split-duplex links can be mapped onto their per-direction channels.
//! Explicit routes declared on the [`Platform`] (e.g. parsed from an XML
//! file) take precedence.

use std::sync::{Arc, OnceLock};

use crate::spec::{Dir, Hop, HostIx, LinkIx, NodeIx, Platform};
use crate::surf_bridge::PlatformImage;

/// Precomputed routing tables for a platform.
#[derive(Debug, Clone)]
pub struct Routes {
    num_nodes: usize,
    /// `next_node[src * n + dst]`: the first node after `src` on the path to
    /// `dst`, or `u32::MAX` when unreachable.
    next_node: Vec<u32>,
    /// The link from `src` to that node.
    next_link: Vec<u32>,
    /// Its traversal direction (0 = forward, 1 = reverse).
    next_dir: Vec<u8>,
}

const UNREACHABLE: u32 = u32::MAX;

impl Routes {
    /// Builds the all-pairs next-hop table with one BFS per node.
    pub fn build(platform: &Platform) -> Self {
        let n = platform.num_nodes();
        // Adjacency: (neighbor, link, direction), sorted for determinism.
        let mut adj: Vec<Vec<(u32, u32, u8)>> = vec![Vec::new(); n];
        for e in platform.edges() {
            adj[e.a.0 as usize].push((e.b.0, e.link.0, 0));
            adj[e.b.0 as usize].push((e.a.0, e.link.0, 1));
        }
        for a in &mut adj {
            a.sort_unstable();
        }

        let mut next_node = vec![UNREACHABLE; n * n];
        let mut next_link = vec![UNREACHABLE; n * n];
        let mut next_dir = vec![0u8; n * n];
        let mut queue = std::collections::VecDeque::new();
        // pred[v] = (previous node, link, dir) on the path src -> v.
        let mut pred: Vec<(u32, u32, u8)> = Vec::new();

        for src in 0..n {
            pred.clear();
            pred.resize(n, (UNREACHABLE, UNREACHABLE, 0));
            queue.clear();
            queue.push_back(src as u32);
            pred[src] = (src as u32, UNREACHABLE, 0);
            while let Some(u) = queue.pop_front() {
                for &(v, l, d) in &adj[u as usize] {
                    if pred[v as usize].0 == UNREACHABLE {
                        pred[v as usize] = (u, l, d);
                        queue.push_back(v);
                    }
                }
            }
            // Walk each destination's predecessor chain back to src; the hop
            // adjacent to src is the first hop.
            for dst in 0..n {
                if dst == src || pred[dst].0 == UNREACHABLE {
                    continue;
                }
                let mut cur = dst as u32;
                let mut hop = pred[dst];
                while hop.0 != src as u32 {
                    cur = hop.0;
                    hop = pred[cur as usize];
                }
                next_node[src * n + dst] = cur;
                next_link[src * n + dst] = hop.1;
                next_dir[src * n + dst] = hop.2;
            }
        }
        Routes {
            num_nodes: n,
            next_node,
            next_link,
            next_dir,
        }
    }

    /// The hop sequence from node `src` to node `dst` (empty when
    /// `src == dst`). Panics if the nodes are disconnected.
    pub fn node_route(&self, src: NodeIx, dst: NodeIx) -> Vec<Hop> {
        let n = self.num_nodes;
        let mut route = Vec::new();
        let mut cur = src.0 as usize;
        let dst = dst.0 as usize;
        while cur != dst {
            let nxt = self.next_node[cur * n + dst];
            assert!(nxt != UNREACHABLE, "no route between nodes {cur} and {dst}");
            let link = LinkIx(self.next_link[cur * n + dst]);
            let dir = if self.next_dir[cur * n + dst] == 0 {
                Dir::Forward
            } else {
                Dir::Reverse
            };
            route.push(Hop { link, dir });
            cur = nxt as usize;
        }
        route
    }

    /// Number of hops between two nodes.
    pub fn hop_count(&self, src: NodeIx, dst: NodeIx) -> usize {
        self.node_route(src, dst).len()
    }
}

/// A platform together with its routing tables: the object the simulators
/// actually query.
#[derive(Debug, Clone)]
pub struct RoutedPlatform {
    platform: Platform,
    routes: Routes,
    /// Lazily built shared kernel image (see [`PlatformImage`]): one plan
    /// and one route-translation cache for every run over this platform.
    /// Cloning the `RoutedPlatform` shares the already-built image.
    image: OnceLock<Arc<PlatformImage>>,
}

impl RoutedPlatform {
    /// Computes routing for a platform.
    pub fn new(platform: Platform) -> Self {
        let routes = Routes::build(&platform);
        RoutedPlatform {
            platform,
            routes,
            image: OnceLock::new(),
        }
    }

    /// The shared, immutable kernel-side image of this platform, built on
    /// first use. Every simulation run instantiates its private kernel
    /// state *from* this image and resolves routes *through* its shared
    /// memoization cache, so concurrent runs (sweep workers, service
    /// requests) pay the translation cost once per platform, not per run.
    pub fn image(&self) -> &Arc<PlatformImage> {
        self.image
            .get_or_init(|| Arc::new(PlatformImage::build(self)))
    }

    /// The underlying platform description.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The hop sequence from host `src` to host `dst`. Explicit routes
    /// (from platform files) take precedence over shortest paths.
    pub fn route(&self, src: HostIx, dst: HostIx) -> Vec<Hop> {
        if let Some(r) = self.platform.explicit_route(src, dst) {
            return r.to_vec();
        }
        self.routes
            .node_route(self.platform.host_node(src), self.platform.host_node(dst))
    }

    /// Nominal end-to-end latency between two hosts.
    pub fn latency(&self, src: HostIx, dst: HostIx) -> f64 {
        self.platform.route_latency(&self.route(src, dst))
    }

    /// Nominal end-to-end bandwidth (bottleneck) between two hosts.
    pub fn bandwidth(&self, src: HostIx, dst: HostIx) -> f64 {
        self.platform.route_bandwidth(&self.route(src, dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SharingPolicy;

    /// h0 - sw1 - sw2 - h1, plus h2 hanging off sw1.
    fn line_platform() -> Platform {
        let mut p = Platform::new();
        let h0 = p.add_host("h0", 1e9);
        let h1 = p.add_host("h1", 1e9);
        let h2 = p.add_host("h2", 1e9);
        let s1 = p.add_switch("sw1");
        let s2 = p.add_switch("sw2");
        p.link_between(
            p.host_node(h0),
            s1,
            "l0",
            125e6,
            1e-6,
            SharingPolicy::Shared,
        );
        p.link_between(s1, s2, "trunk", 1.25e9, 2e-6, SharingPolicy::Shared);
        p.link_between(
            p.host_node(h1),
            s2,
            "l1",
            125e6,
            1e-6,
            SharingPolicy::Shared,
        );
        p.link_between(
            p.host_node(h2),
            s1,
            "l2",
            125e6,
            1e-6,
            SharingPolicy::Shared,
        );
        p
    }

    fn names(p: &Platform, route: &[Hop]) -> Vec<String> {
        route.iter().map(|h| p.link(h.link).name.clone()).collect()
    }

    #[test]
    fn shortest_path_across_switches() {
        let rp = RoutedPlatform::new(line_platform());
        let route = rp.route(HostIx(0), HostIx(1));
        assert_eq!(names(rp.platform(), &route), ["l0", "trunk", "l1"]);
        // h0 is the `a` endpoint of l0, so the first hop is forward; h1 is
        // the `a` endpoint of l1, so the last hop is walked in reverse.
        assert_eq!(route[0].dir, Dir::Forward);
        assert_eq!(route[2].dir, Dir::Reverse);
    }

    #[test]
    fn same_switch_route_is_two_hops() {
        let rp = RoutedPlatform::new(line_platform());
        let route = rp.route(HostIx(0), HostIx(2));
        assert_eq!(names(rp.platform(), &route), ["l0", "l2"]);
    }

    #[test]
    fn route_to_self_is_empty() {
        let rp = RoutedPlatform::new(line_platform());
        assert!(rp.route(HostIx(0), HostIx(0)).is_empty());
    }

    #[test]
    fn reverse_route_flips_every_hop() {
        let rp = RoutedPlatform::new(line_platform());
        let fwd = rp.route(HostIx(0), HostIx(1));
        let rev = rp.route(HostIx(1), HostIx(0));
        let flipped: Vec<Hop> = fwd.iter().rev().map(|h| h.flip()).collect();
        assert_eq!(flipped, rev);
    }

    #[test]
    fn aggregates_match_link_sums() {
        let rp = RoutedPlatform::new(line_platform());
        assert!((rp.latency(HostIx(0), HostIx(1)) - 4e-6).abs() < 1e-18);
        assert_eq!(rp.bandwidth(HostIx(0), HostIx(1)), 125e6);
    }

    #[test]
    fn explicit_route_overrides_shortest_path() {
        let mut p = line_platform();
        let detour = p.add_link("detour", 1.0, 1.0, SharingPolicy::Shared);
        p.add_explicit_route(HostIx(0), HostIx(1), vec![Hop::fwd(detour)]);
        let rp = RoutedPlatform::new(p);
        assert_eq!(rp.route(HostIx(0), HostIx(1)), vec![Hop::fwd(detour)]);
    }

    #[test]
    fn hop_count_matches_route_len() {
        let p = line_platform();
        let routes = Routes::build(&p);
        let a = p.host_node(HostIx(0));
        let b = p.host_node(HostIx(1));
        assert_eq!(routes.hop_count(a, b), routes.node_route(a, b).len());
    }

    #[test]
    #[should_panic]
    fn disconnected_nodes_panic() {
        let mut p = Platform::new();
        p.add_host("a", 1.0);
        p.add_host("b", 1.0);
        let rp = RoutedPlatform::new(p);
        let _ = rp.route(HostIx(0), HostIx(1));
    }
}
