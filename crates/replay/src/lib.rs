//! # smpi-replay — off-line replay of time-independent traces
//!
//! The complement of the paper's on-line simulator: capture a run once
//! (with [`World::capture`] or, for bounded-memory streaming capture,
//! `World::capture_to`), then re-simulate its time-independent trace
//! against *any* platform spec and network model — no rank bodies, no
//! application compute, no payload allocation. Only the simulation kernel
//! runs, which is what makes thousands-of-run sensitivity sweeps (swap the
//! transfer model, the topology, the MPI profile) tractable.
//!
//! ```
//! use smpi::World;
//! use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
//! use surf_sim::TransferModel;
//! use std::sync::Arc;
//!
//! let rp = Arc::new(RoutedPlatform::new(flat_cluster("c", 4, &ClusterConfig::default())));
//! let world = World::smpi(rp, TransferModel::default_affine()).capture(true);
//! let online = world.run(4, |ctx| {
//!     ctx.compute(1e6);
//!     let x = [ctx.rank() as f64];
//!     ctx.allreduce(&x, &smpi::op::sum::<f64>(), &ctx.world())[0]
//! });
//! let trace = online.ti_trace.as_ref().unwrap();
//!
//! // Same platform: the replayed makespan is the online makespan.
//! let replayed = smpi_replay::replay(&world, trace);
//! assert_eq!(replayed.sim_time, online.sim_time);
//! ```
//!
//! ## Trace sources
//!
//! The engine is generic over [`OpSource`]: anything that can hand each
//! rank an op iterator. Two sources ship:
//!
//! * [`TiTrace`] — a fully decoded in-memory trace (v1 text files, or the
//!   `ti_trace` field of a captured run report).
//! * [`smpi::TiV2Reader`] — a block-streaming `TITRACE2` reader
//!   ([`replay_stream`]): ops are decoded block-by-block as each rank's
//!   cursor advances, so replay memory is bounded by block size rather
//!   than trace length, and concurrent replays of the same file share
//!   decoded blocks (stream once, replay many).
//!
//! [`save_trace`]/[`load_trace`] stream through `BufWriter`/`BufRead` and
//! return typed [`TraceIoError`]s; `load_trace` sniffs the leading magic,
//! so v1 text and v2 binary files load through the same call forever.
//!
//! ## Semantics under model swap
//!
//! The trace fixes each rank's *order* of simcalls; the target world fixes
//! their *timing*. Eager/rendezvous is re-decided under the target world's
//! [`smpi::MpiProfile`], transfers are re-timed by its fabric, and waits
//! re-block until the re-timed requests complete. One divergence class
//! needs care: on a different platform, a captured `Poll`/`Waitany` may
//! complete a *different subset* of requests than it did on-line, so later
//! captured waits can name requests the replay has already consumed (or
//! miss ones it has not). The replayer tracks consumption per rank and
//! filters every captured wait down to the requests still live in *this*
//! replay, skipping waits that become empty. On the capture platform
//! nothing is ever filtered and the replay is bit-identical.
//!
//! ## Collective re-selection
//!
//! Captures record each collective as a logical [`TiOp::Coll`] annotated
//! with the algorithm variant the on-line run chose, followed by the
//! point-to-point traffic that variant produced. By default the replayer
//! plays that traffic faithfully. A [`ReplayOptions::coll_hook`] may
//! instead claim a collective: the hook issues whatever substitute traffic
//! it wants through the [`Ctx`] (e.g. calls a different algorithm), the
//! engine skips the captured span, and later waits stay aligned because
//! the skipped post indices are accounted for. Algorithm sweeps therefore
//! no longer require re-capturing the application.
//!
//! Replay is faithful only for applications whose communication structure
//! does not depend on message *values* or wall-clock races (the standard
//! time-independent-trace caveat); wildcard receives replay correctly as
//! long as their matching order stays deterministic.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::Arc;

use smpi::capture::intern_region;
use smpi::capture_v2::{TiV2Reader, TiV2Writer, DEFAULT_BLOCK_OPS, TIT2_MAGIC};
use smpi::{Ctx, ReqId, RunReport, TiOp, TiTrace, TraceIoError, World};

/// A per-rank supplier of time-independent ops. Implemented by in-memory
/// traces and by the streaming `TITRACE2` reader; the replay engine never
/// needs the whole trace at once.
pub trait OpSource: Send + Sync + 'static {
    /// Number of ranks the source describes.
    fn num_ranks(&self) -> usize;
    /// An owning iterator over rank `rank`'s ops, in capture order.
    fn rank_ops(self: Arc<Self>, rank: usize) -> Box<dyn Iterator<Item = TiOp> + Send>;
}

/// Owning cursor over one rank of an `Arc`'d in-memory trace.
struct TraceCursor {
    trace: Arc<TiTrace>,
    rank: usize,
    ix: usize,
}

impl Iterator for TraceCursor {
    type Item = TiOp;

    fn next(&mut self) -> Option<TiOp> {
        let op = self.trace.ranks[self.rank].get(self.ix)?.clone();
        self.ix += 1;
        Some(op)
    }
}

impl OpSource for TiTrace {
    fn num_ranks(&self) -> usize {
        TiTrace::num_ranks(self)
    }

    fn rank_ops(self: Arc<Self>, rank: usize) -> Box<dyn Iterator<Item = TiOp> + Send> {
        Box::new(TraceCursor {
            trace: self,
            rank,
            ix: 0,
        })
    }
}

impl OpSource for TiV2Reader {
    fn num_ranks(&self) -> usize {
        TiV2Reader::num_ranks(self)
    }

    fn rank_ops(self: Arc<Self>, rank: usize) -> Box<dyn Iterator<Item = TiOp> + Send> {
        Box::new(self.rank_iter(rank))
    }
}

/// One captured collective, as presented to a [`CollHook`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollSite<'a> {
    /// Replaying rank.
    pub rank: usize,
    /// Collective name (`allreduce`, `bcast`, ...).
    pub name: &'a str,
    /// Algorithm variant the on-line run dispatched to (empty when the
    /// collective had no nested variant region).
    pub algo: &'a str,
    /// Captured ops implementing this collective (skipped if claimed).
    pub span: u32,
    /// Send/recv posts among those ops.
    pub posts: u32,
}

/// Replay-time collective interceptor. Returning `true` claims the
/// collective: the hook has issued substitute traffic through the [`Ctx`]
/// (or chosen to elide it) and the engine skips the captured span.
/// Returning `false` replays the captured traffic faithfully.
pub type CollHook = dyn Fn(&Ctx, &CollSite<'_>) -> bool + Send + Sync;

/// Knobs of [`replay_with`].
#[derive(Clone, Default)]
pub struct ReplayOptions {
    /// Collective interceptor (see [`CollHook`]). `None` replays
    /// everything faithfully.
    pub coll_hook: Option<Arc<CollHook>>,
}

/// Re-simulates a captured trace on `world` and returns the ordinary run
/// report (same observability artifacts as an on-line run: metrics, Paje
/// timelines, self-profile — per the world's configuration).
///
/// No application code executes: each rank is a trace cursor issuing the
/// captured simcalls with data-less messages.
pub fn replay(world: &World, trace: &TiTrace) -> RunReport<()> {
    replay_shared(world, Arc::new(trace.clone()))
}

/// Like [`replay`], but over a shared `Arc`'d trace: no per-call deep copy
/// of the op streams. This is the entry point for replication sweeps, where
/// many worker threads replay the *same* captured trace concurrently
/// against different platforms/models/perturbations — each call builds its
/// own private runtime and fabric, so replay sessions are independent and
/// `Send` while the trace and the parsed platform stay shared and
/// immutable.
pub fn replay_shared(world: &World, trace: Arc<TiTrace>) -> RunReport<()> {
    replay_source(world, trace)
}

/// Replays a streaming `TITRACE2` file through its shared block decoder:
/// each rank's cursor holds one decoded block at a time, and concurrent
/// replays of the same reader share in-flight blocks. Peak decoded memory
/// is bounded by block size, not trace length.
pub fn replay_stream(world: &World, reader: Arc<TiV2Reader>) -> RunReport<()> {
    replay_source(world, reader)
}

/// Replays any [`OpSource`] with default options.
pub fn replay_source<S: OpSource>(world: &World, source: Arc<S>) -> RunReport<()> {
    replay_with(world, source, ReplayOptions::default())
}

/// Replays any [`OpSource`] with explicit [`ReplayOptions`].
pub fn replay_with<S: OpSource>(
    world: &World,
    source: Arc<S>,
    opts: ReplayOptions,
) -> RunReport<()> {
    let nranks = source.num_ranks();
    assert!(nranks > 0, "cannot replay an empty trace");
    let hook = opts.coll_hook;
    world.run(nranks, move |ctx| {
        let ops = Arc::clone(&source).rank_ops(ctx.rank());
        replay_rank(ctx, ops, hook.as_deref());
    })
}

/// Replays one rank's op stream (the whole replay "application").
fn replay_rank(ctx: &Ctx, mut ops: impl Iterator<Item = TiOp>, hook: Option<&CollHook>) {
    // Requests are named by post index in the trace; `live` maps the index
    // of each not-yet-consumed request to its id in this replay.
    let mut n_posted: u32 = 0;
    let mut live: HashMap<u32, ReqId> = HashMap::new();
    while let Some(op) = ops.next() {
        match op {
            TiOp::Compute { flops } => ctx.compute(flops),
            TiOp::Sleep { secs } => ctx.sleep(secs),
            TiOp::Send {
                dst,
                cid,
                tag,
                bytes,
            } => {
                let req = ctx.replay_send(dst, cid, tag, bytes);
                live.insert(n_posted, req);
                n_posted += 1;
            }
            TiOp::Recv {
                src,
                cid,
                tag,
                max_bytes,
            } => {
                let req = ctx.replay_recv(src, cid, tag, max_bytes);
                live.insert(n_posted, req);
                n_posted += 1;
            }
            TiOp::Wait { reqs, mode } => {
                // Filter to requests still live in this replay (see the
                // crate docs on divergence under model swap).
                let waited: Vec<(u32, ReqId)> = reqs
                    .iter()
                    .filter_map(|ix| live.get(ix).map(|r| (*ix, *r)))
                    .collect();
                if waited.is_empty() {
                    continue; // captured wait already satisfied here
                }
                let ids = waited.iter().map(|(_, r)| *r).collect();
                for c in ctx.replay_wait(ids, mode) {
                    live.remove(&waited[c.index].0);
                }
            }
            TiOp::Region { name, enter } => {
                ctx.replay_region(intern_region(&name), enter);
            }
            TiOp::Coll {
                name,
                algo,
                span,
                posts,
            } => {
                let claimed = hook.is_some_and(|h| {
                    h(
                        ctx,
                        &CollSite {
                            rank: ctx.rank(),
                            name: &name,
                            algo: &algo,
                            span,
                            posts,
                        },
                    )
                });
                if claimed {
                    // Skip the captured implementation (through the closing
                    // region exit) and advance the post counter past its
                    // posts, so later captured waits keep their index
                    // alignment; waits naming the skipped indices find
                    // nothing live and are filtered.
                    for _ in 0..span {
                        ops.next();
                    }
                    n_posted += posts;
                } else {
                    ctx.replay_region(intern_region(&name), true);
                }
            }
        }
    }
}

/// Outcome of an on-line vs replayed comparison on the same world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossValidation {
    /// On-line simulated makespan (seconds).
    pub online: f64,
    /// Replayed simulated makespan (seconds).
    pub replayed: f64,
    /// `|replayed - online| / online`.
    pub rel_err: f64,
}

impl CrossValidation {
    /// `true` when the replayed makespan is within `tol` relative error.
    pub fn within(&self, tol: f64) -> bool {
        self.rel_err <= tol
    }
}

/// Replays `online`'s captured trace on the *same* world and compares
/// makespans. Panics if the report carries no trace (run the world with
/// [`World::capture`]).
pub fn cross_validate<R>(world: &World, online: &RunReport<R>) -> CrossValidation {
    let trace = online
        .ti_trace
        .as_ref()
        .expect("cross_validate needs a captured trace (World::capture)");
    let replayed = replay(world, trace);
    CrossValidation {
        online: online.sim_time,
        replayed: replayed.sim_time,
        rel_err: (replayed.sim_time - online.sim_time).abs() / online.sim_time,
    }
}

/// Writes a trace to `path` in the `TITRACE v1` text format, streaming
/// line-by-line through a [`std::io::BufWriter`].
pub fn save_trace(path: impl AsRef<Path>, trace: &TiTrace) -> Result<(), TraceIoError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    trace.encode_to(&mut w)?;
    w.flush()?;
    Ok(())
}

/// Writes a trace to `path` in the binary `TITRACE2` format, streaming
/// block-by-block (the whole encoded document never exists in memory).
pub fn save_trace_v2(path: impl AsRef<Path>, trace: &TiTrace) -> Result<(), TraceIoError> {
    let file = std::fs::File::create(path)?;
    let mut w = TiV2Writer::new(std::io::BufWriter::new(file), trace.num_ranks());
    for (r, ops) in trace.ranks.iter().enumerate() {
        for chunk in ops.chunks(DEFAULT_BLOCK_OPS) {
            w.write_block(r as u32, chunk)?;
        }
    }
    w.finish()?;
    Ok(())
}

/// Reads a trace file into memory, sniffing the format from the leading
/// magic: `TITRACE2` binary containers and `TITRACE v1` text documents
/// both load here, forever. Short reads, truncation and corruption all
/// surface as typed [`TraceIoError`]s — never a panic.
///
/// For block-streaming access to a v2 file (bounded memory, shared
/// decoding), open it with [`smpi::TiV2Reader`] instead.
pub fn load_trace(path: impl AsRef<Path>) -> Result<TiTrace, TraceIoError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    let mut r = std::io::BufReader::new(file);
    let head = r.fill_buf()?;
    if head.starts_with(TIT2_MAGIC) {
        drop(r);
        TiV2Reader::open(path)?.materialize()
    } else {
        TiTrace::decode_from(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpi::WaitMode;
    use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
    use surf_sim::TransferModel;

    fn small_world() -> World {
        let rp = Arc::new(RoutedPlatform::new(flat_cluster(
            "n",
            4,
            &ClusterConfig::default(),
        )));
        World::smpi(rp, TransferModel::default_affine())
    }

    /// A little app exercising p2p (eager + rendezvous), wildcard waits,
    /// collectives and compute.
    fn app(ctx: &Ctx) -> f64 {
        let w = ctx.world();
        ctx.compute(5e5 * (ctx.rank() + 1) as f64);
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        let mut buf = vec![0.0f64; 64 * 1024];
        let big = vec![ctx.rank() as f64; 64 * 1024];
        ctx.sendrecv(&big, right, 7, &mut buf, left as i32, 7, &w);
        let x = [buf[0] + 1.0];
        ctx.allreduce(&x, &smpi::op::sum::<f64>(), &w)[0]
    }

    #[test]
    fn same_world_replay_is_exact() {
        let world = small_world().capture(true);
        let online = world.run(4, app);
        let trace = online.ti_trace.as_ref().unwrap();
        assert!(trace.summary().sends > 0);
        let replayed = replay(&world, trace);
        assert_eq!(replayed.sim_time, online.sim_time);
        assert_eq!(replayed.finish_times, online.finish_times);
        let cv = cross_validate(&world, &online);
        assert!(cv.within(0.0));
    }

    #[test]
    fn recapturing_a_replay_reproduces_the_trace() {
        // Capturing a replay must yield the original trace: the replayer
        // issues exactly the captured simcall stream.
        let world = small_world().capture(true);
        let online = world.run(4, app);
        let trace = online.ti_trace.unwrap();
        let replayed = replay(&world, &trace);
        assert_eq!(replayed.ti_trace.unwrap(), trace);
    }

    #[test]
    fn recapturing_a_metrics_replay_reproduces_colls() {
        // With metrics on, captures carry logical collectives. Replaying
        // them faithfully re-issues the same region simcalls, so a capture
        // of the replay re-synthesizes identical Coll ops.
        let world = small_world().capture(true).metrics(true);
        let online = world.run(4, app);
        let trace = online.ti_trace.unwrap();
        let has_coll = trace
            .ranks
            .iter()
            .flatten()
            .any(|op| matches!(op, TiOp::Coll { name, algo, .. } if name == "allreduce" && !algo.is_empty()));
        assert!(has_coll, "metrics capture synthesizes annotated colls");
        let replayed = replay(&world, &trace);
        assert_eq!(replayed.sim_time, online.sim_time);
        assert_eq!(replayed.ti_trace.unwrap(), trace);
    }

    #[test]
    fn coll_hook_substitutes_collectives() {
        let world = small_world().capture(true).metrics(true);
        let online = world.run(4, app);
        let trace = Arc::new(online.ti_trace.clone().unwrap());

        // Claim every allreduce and substitute the *same* collective via
        // the normal API: on the same platform the makespan must come out
        // identical (the hook re-runs what the capture recorded).
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let opts = ReplayOptions {
            coll_hook: Some(Arc::new(move |ctx: &Ctx, site: &CollSite<'_>| {
                if site.name != "allreduce" {
                    return false;
                }
                seen2
                    .lock()
                    .unwrap()
                    .push((site.algo.to_string(), site.span, site.posts));
                let x = [0.0f64];
                ctx.allreduce(&x, &smpi::op::sum::<f64>(), &ctx.world());
                true
            })),
        };
        let substituted = replay_with(&world, Arc::clone(&trace), opts);
        assert_eq!(substituted.sim_time, online.sim_time);

        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 4, "one claimed allreduce per rank");
        assert!(seen
            .iter()
            .all(|(algo, span, _)| !algo.is_empty() && *span > 0));

        // Eliding the collective entirely must finish too (wait filtering
        // absorbs the skipped posts) and finish strictly earlier.
        let opts = ReplayOptions {
            coll_hook: Some(Arc::new(|_: &Ctx, site: &CollSite<'_>| {
                site.name == "allreduce"
            })),
        };
        let elided = replay_with(&world, trace, opts);
        assert!(elided.sim_time < online.sim_time);
    }

    #[test]
    fn replay_carries_observability() {
        let world = small_world().capture(true).metrics(true);
        let online = world.run(4, app);
        let trace = online.ti_trace.as_ref().unwrap();
        let replayed = replay(&world.clone().metrics(true), trace);
        // Paje export works on the replayed report too.
        assert!(replayed.paje().contains("PajeSetState"));
        let metrics = replayed.metrics.expect("replay run produces metrics");
        let online_metrics = online.metrics.unwrap();
        // Same protocol traffic either way, including region counters.
        let counter = |m: &smpi_obs::MetricsReport, key: &str| {
            m.counters
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(
            counter(&online_metrics, "core.coll.allreduce"),
            counter(&metrics, "core.coll.allreduce"),
        );
        assert_eq!(
            counter(&online_metrics, "core.sends.eager"),
            counter(&metrics, "core.sends.eager"),
        );
        assert!(counter(&metrics, "core.coll.allreduce") > 0);
    }

    #[test]
    fn replay_reproduces_attribution_byte_identically() {
        // The contention attribution section is a pure function of the
        // simcall stream and the platform, so replaying a captured trace on
        // the same world must reproduce it exactly — same flows in the same
        // order, same share integrals, same bottleneck residencies.
        let world = small_world().capture(true).metrics(true);
        let online = world.run(4, app);
        let trace = online.ti_trace.as_ref().unwrap();
        let replayed = replay(&world.clone().metrics(true), trace);
        let c_online = online.contention.as_ref().expect("online attribution");
        let c_replay = replayed.contention.as_ref().expect("replayed attribution");
        assert!(!c_online.flows.is_empty(), "the app sends messages");
        assert_eq!(c_online.to_json(), c_replay.to_json());
    }

    #[test]
    fn waits_on_consumed_requests_are_skipped() {
        // A hand-written trace whose second wait re-lists an index that the
        // first wait consumed and adds nothing live: replay must skip it
        // rather than panic, and still finish.
        let trace = TiTrace {
            ranks: vec![
                vec![
                    TiOp::Send {
                        dst: 1,
                        cid: 0,
                        tag: 1,
                        bytes: 100,
                    },
                    TiOp::Wait {
                        reqs: vec![0],
                        mode: WaitMode::All,
                    },
                    TiOp::Wait {
                        reqs: vec![0],
                        mode: WaitMode::All,
                    },
                ],
                vec![
                    TiOp::Recv {
                        src: 0,
                        cid: 0,
                        tag: 1,
                        max_bytes: 100,
                    },
                    TiOp::Wait {
                        reqs: vec![0],
                        mode: WaitMode::Any,
                    },
                    TiOp::Wait {
                        reqs: vec![0, 0],
                        mode: WaitMode::Poll,
                    },
                ],
            ],
        };
        let world = small_world();
        let report = replay(&world, &trace);
        assert!(report.sim_time > 0.0);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let world = small_world().capture(true);
        let trace = world.run(3, app).ti_trace.unwrap();
        let dir = std::env::temp_dir().join("smpi_replay_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app.tit");
        save_trace(&path, &trace).unwrap();
        assert_eq!(load_trace(&path).unwrap(), trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_and_load_roundtrip_v2() {
        // The binary format keeps the Coll annotations a v1 text save
        // degrades, so a metrics capture round-trips exactly.
        let world = small_world().capture(true).metrics(true);
        let trace = world.run(3, app).ti_trace.unwrap();
        let dir = std::env::temp_dir().join("smpi_replay_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app.tit2");
        save_trace_v2(&path, &trace).unwrap();
        assert_eq!(load_trace(&path).unwrap(), trace);
        // And the streaming reader agrees with the materializing loader.
        let reader = TiV2Reader::open(&path).unwrap();
        assert_eq!(reader.materialize().unwrap(), trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_replay_matches_in_memory_replay() {
        let dir = std::env::temp_dir().join("smpi_replay_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("streamed.tit2");
        // Capture straight to disk with a tiny budget to force many blocks.
        let world = small_world()
            .capture_to(&path)
            .capture_tuning(16, 1024)
            .metrics(true);
        let online = world.run(4, app);
        assert!(online.ti_trace.is_none(), "streamed capture stays on disk");
        let codec = online.profile.codec.as_ref().expect("codec stats");
        assert!(codec.ops > 0 && codec.blocks > 1);

        let reader = Arc::new(TiV2Reader::open(&path).unwrap());
        let replay_world = small_world().metrics(true);
        let streamed = replay_stream(&replay_world, Arc::clone(&reader));
        assert_eq!(streamed.sim_time, online.sim_time);
        assert_eq!(streamed.finish_times, online.finish_times);

        // The streamed ops equal an in-memory capture of the same run.
        let mem = small_world().capture(true).metrics(true).run(4, app);
        assert_eq!(reader.materialize().unwrap(), mem.ti_trace.unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("smpi_replay_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.tit");
        std::fs::write(&path, "not a trace\n").unwrap();
        let err = load_trace(&path).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)), "got {err:?}");
        // A truncated v2 container is a typed v2 error, not a panic.
        std::fs::write(&path, b"TITRACE2\x04").unwrap();
        let err = load_trace(&path).unwrap_err();
        assert!(matches!(err, TraceIoError::V2(_)), "got {err:?}");
        std::fs::remove_file(&path).ok();
    }
}
