//! # smpi-replay — off-line replay of time-independent traces
//!
//! The complement of the paper's on-line simulator: capture a run once
//! (with [`World::capture`]), then re-simulate its time-independent trace
//! against *any* platform spec and network model — no rank bodies, no
//! application compute, no payload allocation. Only the simulation kernel
//! runs, which is what makes thousands-of-run sensitivity sweeps (swap the
//! transfer model, the topology, the MPI profile) tractable.
//!
//! ```
//! use smpi::World;
//! use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
//! use surf_sim::TransferModel;
//! use std::sync::Arc;
//!
//! let rp = Arc::new(RoutedPlatform::new(flat_cluster("c", 4, &ClusterConfig::default())));
//! let world = World::smpi(rp, TransferModel::default_affine()).capture(true);
//! let online = world.run(4, |ctx| {
//!     ctx.compute(1e6);
//!     let x = [ctx.rank() as f64];
//!     ctx.allreduce(&x, &smpi::op::sum::<f64>(), &ctx.world())[0]
//! });
//! let trace = online.ti_trace.as_ref().unwrap();
//!
//! // Same platform: the replayed makespan is the online makespan.
//! let replayed = smpi_replay::replay(&world, trace);
//! assert_eq!(replayed.sim_time, online.sim_time);
//! ```
//!
//! ## Semantics under model swap
//!
//! The trace fixes each rank's *order* of simcalls; the target world fixes
//! their *timing*. Eager/rendezvous is re-decided under the target world's
//! [`smpi::MpiProfile`], transfers are re-timed by its fabric, and waits
//! re-block until the re-timed requests complete. One divergence class
//! needs care: on a different platform, a captured `Poll`/`Waitany` may
//! complete a *different subset* of requests than it did on-line, so later
//! captured waits can name requests the replay has already consumed (or
//! miss ones it has not). The replayer tracks consumption per rank and
//! filters every captured wait down to the requests still live in *this*
//! replay, skipping waits that become empty. On the capture platform
//! nothing is ever filtered and the replay is bit-identical.
//!
//! Replay is faithful only for applications whose communication structure
//! does not depend on message *values* or wall-clock races (the standard
//! time-independent-trace caveat); wildcard receives replay correctly as
//! long as their matching order stays deterministic.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

use smpi::capture::intern_region;
use smpi::{Ctx, ReqId, RunReport, TiOp, TiTrace, World};

/// Re-simulates a captured trace on `world` and returns the ordinary run
/// report (same observability artifacts as an on-line run: metrics, Paje
/// timelines, self-profile — per the world's configuration).
///
/// No application code executes: each rank is a trace cursor issuing the
/// captured simcalls with data-less messages.
pub fn replay(world: &World, trace: &TiTrace) -> RunReport<()> {
    replay_shared(world, Arc::new(trace.clone()))
}

/// Like [`replay`], but over a shared `Arc`'d trace: no per-call deep copy
/// of the op streams. This is the entry point for replication sweeps, where
/// many worker threads replay the *same* captured trace concurrently
/// against different platforms/models/perturbations — each call builds its
/// own private runtime and fabric, so replay sessions are independent and
/// `Send` while the trace and the parsed platform stay shared and
/// immutable.
pub fn replay_shared(world: &World, trace: Arc<TiTrace>) -> RunReport<()> {
    let nranks = trace.num_ranks();
    assert!(nranks > 0, "cannot replay an empty trace");
    world.run(nranks, move |ctx| {
        replay_rank(ctx, &trace.ranks[ctx.rank()])
    })
}

/// Replays one rank's op sequence (the whole replay "application").
fn replay_rank(ctx: &Ctx, ops: &[TiOp]) {
    // Requests are named by post index in the trace; `live` maps the index
    // of each not-yet-consumed request to its id in this replay.
    let mut n_posted: u32 = 0;
    let mut live: HashMap<u32, ReqId> = HashMap::new();
    for op in ops {
        match op {
            TiOp::Compute { flops } => ctx.compute(*flops),
            TiOp::Sleep { secs } => ctx.sleep(*secs),
            TiOp::Send {
                dst,
                cid,
                tag,
                bytes,
            } => {
                let req = ctx.replay_send(*dst, *cid, *tag, *bytes);
                live.insert(n_posted, req);
                n_posted += 1;
            }
            TiOp::Recv {
                src,
                cid,
                tag,
                max_bytes,
            } => {
                let req = ctx.replay_recv(*src, *cid, *tag, *max_bytes);
                live.insert(n_posted, req);
                n_posted += 1;
            }
            TiOp::Wait { reqs, mode } => {
                // Filter to requests still live in this replay (see the
                // crate docs on divergence under model swap).
                let waited: Vec<(u32, ReqId)> = reqs
                    .iter()
                    .filter_map(|ix| live.get(ix).map(|r| (*ix, *r)))
                    .collect();
                if waited.is_empty() {
                    continue; // captured wait already satisfied here
                }
                let ids = waited.iter().map(|(_, r)| *r).collect();
                for c in ctx.replay_wait(ids, *mode) {
                    live.remove(&waited[c.index].0);
                }
            }
            TiOp::Region { name, enter } => {
                ctx.replay_region(intern_region(name), *enter);
            }
        }
    }
}

/// Outcome of an on-line vs replayed comparison on the same world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossValidation {
    /// On-line simulated makespan (seconds).
    pub online: f64,
    /// Replayed simulated makespan (seconds).
    pub replayed: f64,
    /// `|replayed - online| / online`.
    pub rel_err: f64,
}

impl CrossValidation {
    /// `true` when the replayed makespan is within `tol` relative error.
    pub fn within(&self, tol: f64) -> bool {
        self.rel_err <= tol
    }
}

/// Replays `online`'s captured trace on the *same* world and compares
/// makespans. Panics if the report carries no trace (run the world with
/// [`World::capture`]).
pub fn cross_validate<R>(world: &World, online: &RunReport<R>) -> CrossValidation {
    let trace = online
        .ti_trace
        .as_ref()
        .expect("cross_validate needs a captured trace (World::capture)");
    let replayed = replay(world, trace);
    CrossValidation {
        online: online.sim_time,
        replayed: replayed.sim_time,
        rel_err: (replayed.sim_time - online.sim_time).abs() / online.sim_time,
    }
}

/// Writes a trace to `path` in the `TITRACE v1` text format.
pub fn save_trace(path: impl AsRef<Path>, trace: &TiTrace) -> io::Result<()> {
    std::fs::write(path, trace.encode())
}

/// Reads a `TITRACE v1` file. Decode failures surface as
/// [`io::ErrorKind::InvalidData`].
pub fn load_trace(path: impl AsRef<Path>) -> io::Result<TiTrace> {
    let text = std::fs::read_to_string(path)?;
    TiTrace::decode(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpi::WaitMode;
    use smpi_platform::{flat_cluster, ClusterConfig, RoutedPlatform};
    use surf_sim::TransferModel;

    fn small_world() -> World {
        let rp = Arc::new(RoutedPlatform::new(flat_cluster(
            "n",
            4,
            &ClusterConfig::default(),
        )));
        World::smpi(rp, TransferModel::default_affine())
    }

    /// A little app exercising p2p (eager + rendezvous), wildcard waits,
    /// collectives and compute.
    fn app(ctx: &Ctx) -> f64 {
        let w = ctx.world();
        ctx.compute(5e5 * (ctx.rank() + 1) as f64);
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        let mut buf = vec![0.0f64; 64 * 1024];
        let big = vec![ctx.rank() as f64; 64 * 1024];
        ctx.sendrecv(&big, right, 7, &mut buf, left as i32, 7, &w);
        let x = [buf[0] + 1.0];
        ctx.allreduce(&x, &smpi::op::sum::<f64>(), &w)[0]
    }

    #[test]
    fn same_world_replay_is_exact() {
        let world = small_world().capture(true);
        let online = world.run(4, app);
        let trace = online.ti_trace.as_ref().unwrap();
        assert!(trace.summary().sends > 0);
        let replayed = replay(&world, trace);
        assert_eq!(replayed.sim_time, online.sim_time);
        assert_eq!(replayed.finish_times, online.finish_times);
        let cv = cross_validate(&world, &online);
        assert!(cv.within(0.0));
    }

    #[test]
    fn recapturing_a_replay_reproduces_the_trace() {
        // Capturing a replay must yield the original trace: the replayer
        // issues exactly the captured simcall stream.
        let world = small_world().capture(true);
        let online = world.run(4, app);
        let trace = online.ti_trace.unwrap();
        let replayed = replay(&world, &trace);
        assert_eq!(replayed.ti_trace.unwrap(), trace);
    }

    #[test]
    fn replay_carries_observability() {
        let world = small_world().capture(true).metrics(true);
        let online = world.run(4, app);
        let trace = online.ti_trace.as_ref().unwrap();
        let replayed = replay(&world.clone().metrics(true), trace);
        // Paje export works on the replayed report too.
        assert!(replayed.paje().contains("PajeSetState"));
        let metrics = replayed.metrics.expect("replay run produces metrics");
        let online_metrics = online.metrics.unwrap();
        // Same protocol traffic either way, including region counters.
        let counter = |m: &smpi_obs::MetricsReport, key: &str| {
            m.counters
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(
            counter(&online_metrics, "core.coll.allreduce"),
            counter(&metrics, "core.coll.allreduce"),
        );
        assert_eq!(
            counter(&online_metrics, "core.sends.eager"),
            counter(&metrics, "core.sends.eager"),
        );
        assert!(counter(&metrics, "core.coll.allreduce") > 0);
    }

    #[test]
    fn replay_reproduces_attribution_byte_identically() {
        // The contention attribution section is a pure function of the
        // simcall stream and the platform, so replaying a captured trace on
        // the same world must reproduce it exactly — same flows in the same
        // order, same share integrals, same bottleneck residencies.
        let world = small_world().capture(true).metrics(true);
        let online = world.run(4, app);
        let trace = online.ti_trace.as_ref().unwrap();
        let replayed = replay(&world.clone().metrics(true), trace);
        let c_online = online.contention.as_ref().expect("online attribution");
        let c_replay = replayed.contention.as_ref().expect("replayed attribution");
        assert!(!c_online.flows.is_empty(), "the app sends messages");
        assert_eq!(c_online.to_json(), c_replay.to_json());
    }

    #[test]
    fn waits_on_consumed_requests_are_skipped() {
        // A hand-written trace whose second wait re-lists an index that the
        // first wait consumed and adds nothing live: replay must skip it
        // rather than panic, and still finish.
        let trace = TiTrace {
            ranks: vec![
                vec![
                    TiOp::Send {
                        dst: 1,
                        cid: 0,
                        tag: 1,
                        bytes: 100,
                    },
                    TiOp::Wait {
                        reqs: vec![0],
                        mode: WaitMode::All,
                    },
                    TiOp::Wait {
                        reqs: vec![0],
                        mode: WaitMode::All,
                    },
                ],
                vec![
                    TiOp::Recv {
                        src: 0,
                        cid: 0,
                        tag: 1,
                        max_bytes: 100,
                    },
                    TiOp::Wait {
                        reqs: vec![0],
                        mode: WaitMode::Any,
                    },
                    TiOp::Wait {
                        reqs: vec![0, 0],
                        mode: WaitMode::Poll,
                    },
                ],
            ],
        };
        let world = small_world();
        let report = replay(&world, &trace);
        assert!(report.sim_time > 0.0);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let world = small_world().capture(true);
        let trace = world.run(3, app).ti_trace.unwrap();
        let dir = std::env::temp_dir().join("smpi_replay_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app.tit");
        save_trace(&path, &trace).unwrap();
        assert_eq!(load_trace(&path).unwrap(), trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("smpi_replay_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.tit");
        std::fs::write(&path, "not a trace\n").unwrap();
        let err = load_trace(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
