//! Property test: the `TITRACE v1` codec is lossless — for arbitrary op
//! sequences, encode → decode → encode is the identity on both the value
//! and the text.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::Strategy;

use smpi::{TiOp, TiTrace, WaitMode};

fn op_strategy() -> impl Strategy<Value = TiOp> {
    let region_names = ["allreduce", "reduce_binomial", "allgather_ring", "barrier"];
    prop_oneof![
        (0.0f64..1e15).prop_map(|flops| TiOp::Compute { flops }),
        (0.0f64..1e3).prop_map(|secs| TiOp::Sleep { secs }),
        (0u32..64, 0u32..8, 0i32..1000, 0u64..(1 << 40)).prop_map(|(dst, cid, tag, bytes)| {
            TiOp::Send {
                dst,
                cid,
                tag,
                bytes,
            }
        }),
        (-1i32..64, 0u32..8, -1i32..1000, 0u64..(1 << 40)).prop_map(
            |(src, cid, tag, max_bytes)| TiOp::Recv {
                src,
                cid,
                tag,
                max_bytes,
            }
        ),
        (vec(0u32..256, 0..6), 0usize..4).prop_map(|(reqs, m)| TiOp::Wait {
            reqs,
            mode: [WaitMode::All, WaitMode::Any, WaitMode::Some, WaitMode::Poll][m],
        }),
        (0usize..4, 0usize..2).prop_map(move |(n, e)| TiOp::Region {
            name: region_names[n].to_string(),
            enter: e == 0,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_encode_is_lossless(ranks in vec(vec(op_strategy(), 0..40), 1..6)) {
        let trace = TiTrace { ranks };
        let encoded = trace.encode();
        let decoded = TiTrace::decode(&encoded)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(&decoded, &trace);
        prop_assert_eq!(decoded.encode(), encoded);
    }

    #[test]
    fn extreme_floats_roundtrip(bits in 0u64..u64::MAX) {
        // Any finite f64 bit pattern must survive the text codec exactly.
        let f = f64::from_bits(bits);
        if f.is_finite() {
            let trace = TiTrace {
                ranks: vec![vec![TiOp::Compute { flops: f }, TiOp::Sleep { secs: f }]],
            };
            let decoded = TiTrace::decode(&trace.encode())
                .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
            prop_assert_eq!(decoded, trace);
        }
    }
}
