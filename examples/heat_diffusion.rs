//! A classic teaching workload: 1-D heat diffusion with halo exchange.
//!
//! ```text
//! cargo run --release --example heat_diffusion [ranks] [cells] [steps]
//! ```
//!
//! This is the classroom scenario of the paper's introduction: "students
//! without access to a parallel platform could execute applications in
//! simulation on a single node". The domain is split across ranks; each
//! step exchanges one-cell halos with `sendrecv` and advances an explicit
//! Euler stencil. The simulated run's numeric result is verified against a
//! serial reference — on-line simulation computes *real* data.

use std::sync::Arc;

use smpi_suite::platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use smpi_suite::smpi::World;
use smpi_suite::surf::TransferModel;

const ALPHA: f64 = 0.25;

fn serial(cells: usize, steps: usize) -> Vec<f64> {
    let mut u: Vec<f64> = initial(cells);
    let mut next = u.clone();
    for _ in 0..steps {
        for i in 0..cells {
            let left = if i == 0 { u[0] } else { u[i - 1] };
            let right = if i == cells - 1 {
                u[cells - 1]
            } else {
                u[i + 1]
            };
            next[i] = u[i] + ALPHA * (left - 2.0 * u[i] + right);
        }
        std::mem::swap(&mut u, &mut next);
    }
    u
}

fn initial(cells: usize) -> Vec<f64> {
    (0..cells)
        .map(|i| {
            if i >= cells / 4 && i < cells / 2 {
                100.0
            } else {
                0.0
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ranks: usize = args.get(1).map_or(8, |s| s.parse().unwrap());
    let cells: usize = args.get(2).map_or(1 << 14, |s| s.parse().unwrap());
    let steps: usize = args.get(3).map_or(200, |s| s.parse().unwrap());
    assert_eq!(cells % ranks, 0, "cells must divide evenly");

    let platform = Arc::new(RoutedPlatform::new(flat_cluster(
        "teaching",
        ranks,
        &ClusterConfig::default(),
    )));
    let world = World::smpi(platform, TransferModel::default_affine());

    let report = world.run(ranks, move |ctx| {
        let comm = ctx.world();
        let r = ctx.rank();
        let p = ctx.size();
        let local = cells / p;
        let offset = r * local;
        let global = initial(cells);
        let mut u: Vec<f64> = global[offset..offset + local].to_vec();
        let mut next = u.clone();

        for _ in 0..steps {
            // Halo exchange with both neighbours (boundary ranks clamp).
            let mut left_halo = [u[0]];
            let mut right_halo = [u[local - 1]];
            if r > 0 {
                let mut incoming = [0.0f64];
                ctx.sendrecv(&[u[0]], r - 1, 0, &mut incoming, (r - 1) as i32, 1, &comm);
                left_halo = incoming;
            }
            if r + 1 < p {
                let mut incoming = [0.0f64];
                ctx.sendrecv(
                    &[u[local - 1]],
                    r + 1,
                    1,
                    &mut incoming,
                    (r + 1) as i32,
                    0,
                    &comm,
                );
                right_halo = incoming;
            }
            for i in 0..local {
                let left = if i == 0 { left_halo[0] } else { u[i - 1] };
                let right = if i == local - 1 {
                    right_halo[0]
                } else {
                    u[i + 1]
                };
                next[i] = u[i] + ALPHA * (left - 2.0 * u[i] + right);
            }
            std::mem::swap(&mut u, &mut next);
        }
        u
    });

    // Stitch the distributed result together and verify against serial.
    let mut dist = Vec::with_capacity(cells);
    for part in &report.results {
        dist.extend_from_slice(part);
    }
    let reference = serial(cells, steps);
    let max_err = dist
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    println!("ranks={ranks} cells={cells} steps={steps}");
    println!("max |distributed - serial| = {max_err:.3e}");
    println!("simulated execution time   = {:.4} s", report.sim_time);
    println!(
        "simulation wall-clock      = {:.4} s",
        report.wall.as_secs_f64()
    );
    assert!(max_err < 1e-9, "distributed result diverged");
}
