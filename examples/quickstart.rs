//! Quickstart: simulate a 4-rank MPI program on a cluster you don't have.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Every rank runs *real* Rust code; only time is simulated. The program
//! below computes a distributed dot product with an allreduce and reports
//! both the (correct) numeric result and the simulated execution time on a
//! 16-node Gigabit-Ethernet cluster.

use std::sync::Arc;

use smpi_suite::platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use smpi_suite::smpi::{op, World};
use smpi_suite::surf::TransferModel;

fn main() {
    // 1. Describe the target platform: 16 nodes, 1 GbE, 50 µs latency.
    let platform = Arc::new(RoutedPlatform::new(flat_cluster(
        "cluster",
        16,
        &ClusterConfig::default(),
    )));

    // 2. Pick a network model. `default_affine()` is the classic
    //    latency/bandwidth model; calibrate a piece-wise model with the
    //    `smpi-calibrate` crate for accuracy (see calibrate_and_simulate.rs).
    //    `metrics(true)` turns on the observability layer: per-rank state
    //    timelines, link utilization and the simulator self-profile.
    let world = World::smpi(platform, TransferModel::default_affine()).metrics(true);

    // 3. Run the MPI program: each closure is one rank.
    const N: usize = 1 << 16;
    let report = world.run(16, |ctx| {
        let rank = ctx.rank();
        let p = ctx.size();
        // Each rank owns a slice of two big vectors.
        let lo = rank * N / p;
        let hi = (rank + 1) * N / p;
        let x: Vec<f64> = (lo..hi).map(|i| i as f64).collect();
        let y: Vec<f64> = (lo..hi).map(|i| 1.0 / (i + 1) as f64).collect();
        let local: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();

        // A real MPI_Allreduce over simulated wires.
        let global = ctx.allreduce(&[local], &op::sum::<f64>(), &ctx.world());
        global[0]
    });

    let expect: f64 = (0..N).map(|i| i as f64 / (i + 1) as f64).sum();
    println!(
        "dot product   : {:.6} (expected {:.6})",
        report.results[0], expect
    );
    println!("simulated time: {:.6} s", report.sim_time);
    println!("wall-clock    : {:.6} s", report.wall.as_secs_f64());
    assert!((report.results[0] - expect).abs() < 1e-6);

    // 4. The self-profile says how hard the simulator itself worked, and
    //    the metrics snapshot says where the *application's* time went.
    println!();
    print!("{}", report.profile.render());
    let metrics = report.metrics.as_ref().expect("metrics were enabled");
    let blocked: f64 = metrics
        .timelines_of("rank")
        .map(|tl| tl.time_in_state("blocked_in_recv", report.sim_time))
        .sum();
    println!(
        "ranks spent {:.6} s total blocked in receives (allreduce waits)",
        blocked
    );
}
