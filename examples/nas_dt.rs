//! Run the NAS DT benchmark in simulation, like `mpirun dt.S.x BH` would on
//! a real cluster.
//!
//! ```text
//! cargo run --release --example nas_dt -- S BH
//! cargo run --release --example nas_dt -- A WH
//! ```
//!
//! Prints the makespan, the number of processes, and the memory accounting
//! with RAM folding on (the paper's §3.2 techniques).

use std::sync::Arc;

use smpi_suite::platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use smpi_suite::smpi::World;
use smpi_suite::surf::TransferModel;
use smpi_suite::workloads::{build_graph, dt_rank, DtClass, DtGraph};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let class = DtClass::parse(args.get(1).map_or("S", String::as_str))
        .expect("class must be one of S W A B C");
    let shape = match args.get(2).map_or("BH", String::as_str) {
        "BH" => DtGraph::Bh,
        "WH" => DtGraph::Wh,
        "SH" => DtGraph::Sh,
        other => panic!("unknown graph {other:?} (use BH, WH or SH)"),
    };

    let graph = Arc::new(build_graph(class, shape));
    let n = graph.num_nodes();
    println!("NAS DT class {class:?}, graph {shape:?}: {n} processes");

    let platform = Arc::new(RoutedPlatform::new(flat_cluster(
        "dtcluster",
        n,
        &ClusterConfig::default(),
    )));
    let world = World::smpi(platform, TransferModel::default_affine()).ram_folding(true);
    let g = Arc::clone(&graph);
    let report = world.run(n, move |ctx| dt_rank(ctx, &g, class));

    let checksum: f64 = report.results.iter().sum();
    println!("verification checksum : {checksum:.6e}");
    println!("simulated time        : {:.4} s", report.sim_time);
    println!("simulation wall-clock : {:.4} s", report.wall.as_secs_f64());
    println!(
        "memory: {:.1} MiB folded / {:.1} MiB unfolded ({:.1}x saved)",
        report.memory.peak_bytes as f64 / 1048576.0,
        report.memory.logical_peak_bytes as f64 / 1048576.0,
        report.memory.folding_factor()
    );
}
