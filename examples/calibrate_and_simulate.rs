//! The full paper pipeline in one example (§6 + Fig. 3):
//!
//! 1. run a SKaMPI-style ping-pong on the emulated "real" cluster
//!    (packet-level griffon with an OpenMPI personality);
//! 2. fit the piece-wise linear model by segmented regression;
//! 3. simulate the same ping-pong with SMPI's flow model;
//! 4. report the logarithmic error, and export the platform as XML.
//!
//! ```text
//! cargo run --release --example calibrate_and_simulate
//! ```

use std::sync::Arc;

use smpi_suite::calibrate::{fit_piecewise, pingpong, RouteRef};
use smpi_suite::metrics::ErrorSummary;
use smpi_suite::platform::{griffon, to_xml, HostIx, RoutedPlatform};
use smpi_suite::smpi::{MpiProfile, World};

fn main() {
    let rp = Arc::new(RoutedPlatform::new(griffon()));

    // 1. "Measure" the real cluster.
    let testbed = World::testbed(Arc::clone(&rp), MpiProfile::openmpi_like());
    let sizes: Vec<u64> = (0..24).map(|k| 1u64 << k).collect();
    let samples = pingpong(&testbed, 0, 1, &sizes, 1);

    // 2. Fit the 3-segment model of §4.1.
    let route = RouteRef {
        latency: rp.latency(HostIx(0), HostIx(1)),
        bandwidth: rp.bandwidth(HostIx(0), HostIx(1)),
    };
    let model = fit_piecewise(&samples, 3, route);
    println!("fitted segments:");
    for seg in model.segments() {
        println!(
            "  size < {:>12}: latency x{:.2}, bandwidth x{:.3}",
            if seg.upper.is_infinite() {
                "inf".to_string()
            } else {
                format!("{:.0} B", seg.upper)
            },
            seg.lat_factor,
            seg.bw_factor
        );
    }

    // 3. Re-run the ping-pong under SMPI with the fitted model.
    let smpi = World::smpi(Arc::clone(&rp), model);
    let simulated = pingpong(&smpi, 0, 1, &sizes, 1);

    // 4. Accuracy summary (the paper's Fig. 3 bottom line).
    let truth: Vec<f64> = samples.iter().map(|s| s.time).collect();
    let sim: Vec<f64> = simulated.iter().map(|s| s.time).collect();
    println!(
        "\nSMPI vs testbed ping-pong: {}",
        ErrorSummary::compare(&sim, &truth)
    );

    // Export the platform file (truncated preview).
    let xml = to_xml(rp.platform());
    let preview: String = xml.lines().take(8).collect::<Vec<_>>().join("\n");
    println!("\nplatform XML ({} bytes):\n{preview}\n...", xml.len());
}
