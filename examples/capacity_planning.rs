//! "What if?" capacity planning — the paper's first motivation:
//! "determine a cost-effective hardware configuration appropriate for the
//! expected application workload" before buying anything.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! The expected workload (a 16-process pairwise all-to-all of 1 MiB
//! blocks — a transpose-heavy solver) is captured *once* as a
//! time-independent trace. The sweep engine then replays it across the
//! full purchase matrix: 2 candidate interconnects × 2 network models
//! (the calibrated surf kernel and the packet-level substrate) × noise
//! on/off — with 8 jittered replications per noisy cell, so the answer is
//! a makespan *distribution* per candidate, not a single optimistic
//! number. None of the clusters needs to exist.

use std::sync::Arc;

use smpi_suite::platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use smpi_suite::smpi::World;
use smpi_suite::surf::TransferModel;
use smpi_suite::sweep::{run_sweep, FabricKind, NoiseAxis, Program, SweepConfig};
use smpi_suite::workloads::timed_alltoall;

fn candidate(name: &str, bw: f64, lat: f64) -> (String, Arc<RoutedPlatform>) {
    (
        name.to_string(),
        Arc::new(RoutedPlatform::new(flat_cluster(
            name,
            16,
            &ClusterConfig {
                link_bandwidth: bw,
                link_latency: lat,
                ..ClusterConfig::default()
            },
        ))),
    )
}

fn main() {
    let chunk = 128 * 1024; // 1 MiB per peer

    // Capture the workload once, on the cheapest candidate — streamed
    // straight to a TITRACE2 file, so capture memory stays bounded no
    // matter how long the expected workload runs.
    let tit2 = std::env::temp_dir().join("capacity_planning.tit2");
    let gbe = candidate("1gbe-50us", 125e6, 50e-6);
    let world = World::smpi(Arc::clone(&gbe.1), TransferModel::default_affine()).capture_to(&tit2);
    world.run(16, move |ctx| {
        timed_alltoall(ctx, chunk);
    });
    // Every sweep worker streams ops from this one shared block decoder.
    let reader = Arc::new(smpi_suite::smpi::TiV2Reader::open(&tit2).expect("open capture"));

    // The purchase matrix: platforms × models × weather.
    let cfg = SweepConfig {
        programs: vec![Program::stream("alltoall-1MiB", reader)],
        platforms: vec![gbe, candidate("10gbe-30us", 1.25e9, 30e-6)],
        fabrics: vec![
            ("surf".into(), FabricKind::surf()),
            ("packet".into(), FabricKind::packet()),
        ],
        // 92% of nominal is the standard TCP payload derate.
        calibrations: vec![("affine-92".into(), TransferModel::default_affine())],
        noises: vec![NoiseAxis::none(), NoiseAxis::jitter("j10", 0.10, 8)],
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        seed: 2011,
        strip_hostdep: true,
    };

    println!(
        "sweeping {} scenarios over {} workers...\n",
        cfg.scenario_count(),
        cfg.workers
    );
    // Stream the per-scenario table to a sink we discard here; the
    // distributions are the deliverable for a purchase decision.
    let (report, _lines) = run_sweep(&cfg, std::io::sink()).expect("sweep");

    println!("{}", report.render());
    println!("(simulated on one machine; no cluster was purchased in the making of this table)");
}
