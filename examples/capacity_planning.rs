//! "What if?" capacity planning — the paper's first motivation:
//! "determine a cost-effective hardware configuration appropriate for the
//! expected application workload" before buying anything.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! The expected workload here is a 16-process pairwise all-to-all of 1 MiB
//! blocks (a transpose-heavy solver). Three candidate interconnects are
//! simulated; none needs to exist.

use std::sync::Arc;

use smpi_suite::platform::{flat_cluster, ClusterConfig, RoutedPlatform};
use smpi_suite::smpi::World;
use smpi_suite::surf::TransferModel;
use smpi_suite::workloads::timed_alltoall;

fn main() {
    let candidates = [
        ("1 GbE, 50us", 125e6, 50e-6),
        ("10 GbE, 30us", 1.25e9, 30e-6),
        ("25 GbE, 5us", 3.125e9, 5e-6),
    ];
    let chunk = 128 * 1024; // 1 MiB per peer

    println!(
        "{:<16} {:>14} {:>12}",
        "interconnect", "alltoall(s)", "speedup"
    );
    let mut baseline = None;
    for (name, bw, lat) in candidates {
        let platform = Arc::new(RoutedPlatform::new(flat_cluster(
            "candidate",
            16,
            &ClusterConfig {
                link_bandwidth: bw,
                link_latency: lat,
                ..ClusterConfig::default()
            },
        )));
        // 92% of nominal is the standard TCP payload derate.
        let world = World::smpi(platform, TransferModel::default_affine());
        let report = world.run(16, move |ctx| timed_alltoall(ctx, chunk));
        let t = report.results.iter().copied().fold(0.0, f64::max);
        let base = *baseline.get_or_insert(t);
        println!("{:<16} {:>14.4} {:>11.2}x", name, t, base / t);
    }
    println!("\n(simulated on one machine; no cluster was purchased in the making of this table)");
}
